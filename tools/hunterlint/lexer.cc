#include "hunterlint/lexer.h"

#include <cctype>
#include <cstddef>

namespace hunter::lint {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-character punctuators we keep as single tokens. Rules only care
// about a few of these (`::` must not split into two `:` so range-for
// detection can find the top-level colon), but keeping the common ones
// intact makes token-window matching less surprising.
constexpr const char* kPuncts3[] = {"<<=", ">>=", "...", "->*"};
constexpr const char* kPuncts2[] = {"::", "->", "<<", ">>", "<=", ">=", "==",
                                    "!=", "&&", "||", "+=", "-=", "*=", "/=",
                                    "%=", "&=", "|=", "^=", "++", "--", ".*"};

}  // namespace

LexedFile Lex(const std::string& source) {
  LexedFile out;
  const size_t n = source.size();
  size_t i = 0;
  int line = 1;
  size_t line_start = 0;  // offset of the current line's first character
  // Offset one past the last identifier token's final character, for the
  // raw-string adjacency check (R must touch the opening quote).
  size_t prev_ident_end = std::string::npos;

  auto advance_newline = [&](size_t pos) {
    line++;
    line_start = pos + 1;
  };

  // Length of a line splice (backslash + newline, with an optional \r) at
  // offset j, or 0 when there is none. Splices can appear *inside* tokens
  // and comments — `ab\<newline>c` is the single identifier `abc` — so the
  // token scanners below consult this, not just the top-level loop.
  auto splice_len = [&](size_t j) -> size_t {
    if (j >= n || source[j] != '\\') return 0;
    if (j + 1 < n && source[j + 1] == '\n') return 2;
    if (j + 2 < n && source[j + 1] == '\r' && source[j + 2] == '\n') return 3;
    return 0;
  };

  auto only_ws_before = [&](size_t pos) {
    for (size_t k = line_start; k < pos; ++k) {
      const char c = source[k];
      if (c != ' ' && c != '\t') return false;
    }
    return true;
  };

  while (i < n) {
    const char c = source[i];

    if (c == '\n') {
      advance_newline(i);
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
      ++i;
      continue;
    }
    // Line continuation between tokens.
    if (const size_t sp = splice_len(i); sp != 0) {
      i += sp;
      advance_newline(i - 1);
      continue;
    }

    // Comments. A `//` comment whose line ends in a splice continues onto
    // the next source line (the splice is part of the comment, exactly as
    // the preprocessor sees it), so a suppression annotation can never be
    // truncated — or a stray trailing backslash silently swallow code.
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      Comment comment;
      comment.line = line;
      comment.owns_line = only_ws_before(i);
      i += 2;
      std::string text;
      while (i < n && source[i] != '\n') {
        if (const size_t sp = splice_len(i); sp != 0) {
          i += sp;
          advance_newline(i - 1);
          continue;
        }
        text += source[i++];
      }
      comment.text = std::move(text);
      out.comments.push_back(std::move(comment));
      continue;
    }
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      Comment comment;
      comment.line = line;
      comment.owns_line = only_ws_before(i);
      i += 2;
      const size_t start = i;
      while (i + 1 < n && !(source[i] == '*' && source[i + 1] == '/')) {
        if (source[i] == '\n') advance_newline(i);
        ++i;
      }
      comment.text = source.substr(start, (i + 1 < n ? i : n) - start);
      i = (i + 1 < n) ? i + 2 : n;
      out.comments.push_back(std::move(comment));
      continue;
    }

    // Preprocessor `#include`: capture the header-name, which does not lex
    // as a normal token in its angled form.
    if (c == '#' && only_ws_before(i)) {
      size_t j = i + 1;
      while (j < n && (source[j] == ' ' || source[j] == '\t')) ++j;
      size_t d = j;
      while (d < n && IsIdentChar(source[d])) ++d;
      const std::string directive = source.substr(j, d - j);
      out.tokens.push_back({TokKind::kPunct, "#", line});
      if (!directive.empty()) {
        out.tokens.push_back({TokKind::kIdentifier, directive, line});
      }
      if (directive == "include") {
        while (d < n && (source[d] == ' ' || source[d] == '\t')) ++d;
        if (d < n && (source[d] == '"' || source[d] == '<')) {
          const char close = (source[d] == '"') ? '"' : '>';
          const size_t path_start = d + 1;
          size_t e = path_start;
          while (e < n && source[e] != close && source[e] != '\n') ++e;
          out.includes.push_back(
              {line, source.substr(path_start, e - path_start), close == '>'});
          i = (e < n && source[e] == close) ? e + 1 : e;
          continue;
        }
      }
      i = d;
      continue;
    }

    // String literals (incl. raw strings). Prefix letters (L, u8, R, uR...)
    // are lexed as part of the preceding identifier; that is fine because we
    // only need to skip the literal's interior, and an identifier ending in
    // R *immediately adjacent* to the `"` marks a raw string — `R "x"` with
    // whitespace between is the identifier R and an ordinary literal, as is
    // `FooR"x"` (FooR does not end in a raw-string prefix).
    if (c == '"') {
      bool raw = false;
      if (prev_ident_end == i && !out.tokens.empty() &&
          out.tokens.back().kind == TokKind::kIdentifier) {
        const std::string& prev = out.tokens.back().text;
        raw = !prev.empty() && prev.back() == 'R' &&
              (prev.size() == 1 || prev == "uR" || prev == "UR" ||
               prev == "LR" || prev == "u8R");
      }
      const int string_line = line;
      if (raw) {
        // Raw literals are the one context where splices do NOT apply: the
        // contents run verbatim to )delim", backslashes and all.
        size_t j = i + 1;
        std::string delim;
        while (j < n && source[j] != '(') delim += source[j++];
        const std::string closer = ")" + delim + "\"";
        const size_t body = (j < n) ? j + 1 : n;
        size_t end = source.find(closer, body);
        if (end == std::string::npos) end = n;
        for (size_t k = i; k < end && k < n; ++k) {
          if (source[k] == '\n') advance_newline(k);
        }
        out.tokens.push_back({TokKind::kString,
                              source.substr(body, end - body), string_line});
        i = (end == n) ? n : end + closer.size();
      } else {
        size_t j = i + 1;
        std::string text;
        while (j < n && source[j] != '"' && source[j] != '\n') {
          if (const size_t sp = splice_len(j); sp != 0) {
            // A spliced literal continues on the next line; the splice is
            // not part of the value and the line counter must advance or
            // every later violation would be reported one line early.
            j += sp;
            advance_newline(j - 1);
            continue;
          }
          if (source[j] == '\\' && j + 1 < n) text += source[j++];
          text += source[j++];
        }
        out.tokens.push_back({TokKind::kString, std::move(text), string_line});
        i = (j < n && source[j] == '"') ? j + 1 : j;
      }
      continue;
    }
    if (c == '\'' && !(i > 0 && std::isdigit(static_cast<unsigned char>(
                                    source[i - 1])))) {
      // Digit separators (1'000'000) are consumed by the number lexer; a
      // quote after a digit outside a number is rare enough to ignore.
      size_t j = i + 1;
      while (j < n && source[j] != '\'' && source[j] != '\n') {
        if (source[j] == '\\' && j + 1 < n) ++j;
        ++j;
      }
      out.tokens.push_back(
          {TokKind::kCharLit, source.substr(i + 1, j - i - 1), line});
      i = (j < n && source[j] == '\'') ? j + 1 : j;
      continue;
    }

    if (IsIdentStart(c)) {
      const int ident_line = line;
      size_t j = i;
      std::string text;
      while (j < n) {
        if (const size_t sp = splice_len(j); sp != 0 && j + sp < n &&
                                             IsIdentChar(source[j + sp])) {
          // `ab\<newline>c` is one identifier, `abc`.
          j += sp;
          advance_newline(j - 1);
          continue;
        }
        if (!IsIdentChar(source[j])) break;
        text += source[j++];
      }
      out.tokens.push_back(
          {TokKind::kIdentifier, std::move(text), ident_line});
      prev_ident_end = j;
      i = j;
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(source[i + 1])))) {
      // pp-number: digits, identifier chars, '.', digit separators, and
      // sign characters following an exponent letter.
      size_t j = i;
      while (j < n) {
        const char d = source[j];
        if (IsIdentChar(d) || d == '.') {
          ++j;
        } else if (d == '\'' && j + 1 < n &&
                   std::isalnum(static_cast<unsigned char>(source[j + 1]))) {
          j += 2;
        } else if ((d == '+' || d == '-') && j > i &&
                   (source[j - 1] == 'e' || source[j - 1] == 'E' ||
                    source[j - 1] == 'p' || source[j - 1] == 'P')) {
          ++j;
        } else {
          break;
        }
      }
      out.tokens.push_back({TokKind::kNumber, source.substr(i, j - i), line});
      i = j;
      continue;
    }

    // Punctuation: longest match first.
    bool matched = false;
    for (const char* p : kPuncts3) {
      if (source.compare(i, 3, p) == 0) {
        out.tokens.push_back({TokKind::kPunct, p, line});
        i += 3;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    for (const char* p : kPuncts2) {
      if (source.compare(i, 2, p) == 0) {
        out.tokens.push_back({TokKind::kPunct, p, line});
        i += 2;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    out.tokens.push_back({TokKind::kPunct, std::string(1, c), line});
    ++i;
  }

  return out;
}

}  // namespace hunter::lint
