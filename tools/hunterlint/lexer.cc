#include "hunterlint/lexer.h"

#include <cctype>
#include <cstddef>

namespace hunter::lint {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-character punctuators we keep as single tokens. Rules only care
// about a few of these (`::` must not split into two `:` so range-for
// detection can find the top-level colon), but keeping the common ones
// intact makes token-window matching less surprising.
constexpr const char* kPuncts3[] = {"<<=", ">>=", "...", "->*"};
constexpr const char* kPuncts2[] = {"::", "->", "<<", ">>", "<=", ">=", "==",
                                    "!=", "&&", "||", "+=", "-=", "*=", "/=",
                                    "%=", "&=", "|=", "^=", "++", "--", ".*"};

}  // namespace

LexedFile Lex(const std::string& source) {
  LexedFile out;
  const size_t n = source.size();
  size_t i = 0;
  int line = 1;
  size_t line_start = 0;  // offset of the current line's first character

  auto advance_newline = [&](size_t pos) {
    line++;
    line_start = pos + 1;
  };

  auto only_ws_before = [&](size_t pos) {
    for (size_t k = line_start; k < pos; ++k) {
      const char c = source[k];
      if (c != ' ' && c != '\t') return false;
    }
    return true;
  };

  while (i < n) {
    const char c = source[i];

    if (c == '\n') {
      advance_newline(i);
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
      ++i;
      continue;
    }
    // Line continuation.
    if (c == '\\' && i + 1 < n && (source[i + 1] == '\n' ||
                                   (source[i + 1] == '\r' && i + 2 < n &&
                                    source[i + 2] == '\n'))) {
      i += (source[i + 1] == '\n') ? 2 : 3;
      advance_newline(i - 1);
      continue;
    }

    // Comments.
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      Comment comment;
      comment.line = line;
      comment.owns_line = only_ws_before(i);
      i += 2;
      const size_t start = i;
      while (i < n && source[i] != '\n') ++i;
      comment.text = source.substr(start, i - start);
      out.comments.push_back(std::move(comment));
      continue;
    }
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      Comment comment;
      comment.line = line;
      comment.owns_line = only_ws_before(i);
      i += 2;
      const size_t start = i;
      while (i + 1 < n && !(source[i] == '*' && source[i + 1] == '/')) {
        if (source[i] == '\n') advance_newline(i);
        ++i;
      }
      comment.text = source.substr(start, (i + 1 < n ? i : n) - start);
      i = (i + 1 < n) ? i + 2 : n;
      out.comments.push_back(std::move(comment));
      continue;
    }

    // Preprocessor `#include`: capture the header-name, which does not lex
    // as a normal token in its angled form.
    if (c == '#' && only_ws_before(i)) {
      size_t j = i + 1;
      while (j < n && (source[j] == ' ' || source[j] == '\t')) ++j;
      size_t d = j;
      while (d < n && IsIdentChar(source[d])) ++d;
      const std::string directive = source.substr(j, d - j);
      out.tokens.push_back({TokKind::kPunct, "#", line});
      if (!directive.empty()) {
        out.tokens.push_back({TokKind::kIdentifier, directive, line});
      }
      if (directive == "include") {
        while (d < n && (source[d] == ' ' || source[d] == '\t')) ++d;
        if (d < n && (source[d] == '"' || source[d] == '<')) {
          const char close = (source[d] == '"') ? '"' : '>';
          const size_t path_start = d + 1;
          size_t e = path_start;
          while (e < n && source[e] != close && source[e] != '\n') ++e;
          out.includes.push_back(
              {line, source.substr(path_start, e - path_start), close == '>'});
          i = (e < n && source[e] == close) ? e + 1 : e;
          continue;
        }
      }
      i = d;
      continue;
    }

    // String literals (incl. raw strings). Prefix letters (L, u8, R, uR...)
    // are lexed as part of the preceding identifier; that is fine because we
    // only need to skip the literal's interior, and an identifier ending in
    // R directly followed by `"` marks a raw string.
    if (c == '"') {
      bool raw = false;
      if (!out.tokens.empty() &&
          out.tokens.back().kind == TokKind::kIdentifier) {
        const std::string& prev = out.tokens.back().text;
        raw = !prev.empty() && prev.back() == 'R' &&
              (prev.size() == 1 || prev == "uR" || prev == "UR" ||
               prev == "LR" || prev == "u8R");
      }
      const int string_line = line;
      if (raw) {
        size_t j = i + 1;
        std::string delim;
        while (j < n && source[j] != '(') delim += source[j++];
        const std::string closer = ")" + delim + "\"";
        const size_t body = (j < n) ? j + 1 : n;
        size_t end = source.find(closer, body);
        if (end == std::string::npos) end = n;
        for (size_t k = i; k < end && k < n; ++k) {
          if (source[k] == '\n') advance_newline(k);
        }
        out.tokens.push_back({TokKind::kString,
                              source.substr(body, end - body), string_line});
        i = (end == n) ? n : end + closer.size();
      } else {
        size_t j = i + 1;
        while (j < n && source[j] != '"' && source[j] != '\n') {
          if (source[j] == '\\' && j + 1 < n) ++j;
          ++j;
        }
        out.tokens.push_back(
            {TokKind::kString, source.substr(i + 1, j - i - 1), string_line});
        i = (j < n && source[j] == '"') ? j + 1 : j;
      }
      continue;
    }
    if (c == '\'' && !(i > 0 && std::isdigit(static_cast<unsigned char>(
                                    source[i - 1])))) {
      // Digit separators (1'000'000) are consumed by the number lexer; a
      // quote after a digit outside a number is rare enough to ignore.
      size_t j = i + 1;
      while (j < n && source[j] != '\'' && source[j] != '\n') {
        if (source[j] == '\\' && j + 1 < n) ++j;
        ++j;
      }
      out.tokens.push_back(
          {TokKind::kCharLit, source.substr(i + 1, j - i - 1), line});
      i = (j < n && source[j] == '\'') ? j + 1 : j;
      continue;
    }

    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(source[j])) ++j;
      out.tokens.push_back(
          {TokKind::kIdentifier, source.substr(i, j - i), line});
      i = j;
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(source[i + 1])))) {
      // pp-number: digits, identifier chars, '.', digit separators, and
      // sign characters following an exponent letter.
      size_t j = i;
      while (j < n) {
        const char d = source[j];
        if (IsIdentChar(d) || d == '.') {
          ++j;
        } else if (d == '\'' && j + 1 < n &&
                   std::isalnum(static_cast<unsigned char>(source[j + 1]))) {
          j += 2;
        } else if ((d == '+' || d == '-') && j > i &&
                   (source[j - 1] == 'e' || source[j - 1] == 'E' ||
                    source[j - 1] == 'p' || source[j - 1] == 'P')) {
          ++j;
        } else {
          break;
        }
      }
      out.tokens.push_back({TokKind::kNumber, source.substr(i, j - i), line});
      i = j;
      continue;
    }

    // Punctuation: longest match first.
    bool matched = false;
    for (const char* p : kPuncts3) {
      if (source.compare(i, 3, p) == 0) {
        out.tokens.push_back({TokKind::kPunct, p, line});
        i += 3;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    for (const char* p : kPuncts2) {
      if (source.compare(i, 2, p) == 0) {
        out.tokens.push_back({TokKind::kPunct, p, line});
        i += 2;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    out.tokens.push_back({TokKind::kPunct, std::string(1, c), line});
    ++i;
  }

  return out;
}

}  // namespace hunter::lint
