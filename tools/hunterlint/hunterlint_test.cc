// Unit and golden-fixture tests for hunterlint.
//
// The inline tests pin each rule's firing conditions and the suppression
// semantics; the fixture tests pin exact (rule, line) pairs against the
// checked-in files under testdata/ so the whole pipeline (lexer → rules →
// suppression → reporting) is covered end to end.

#include "hunterlint/hunterlint.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "hunterlint/lexer.h"
#include "hunterlint/rules.h"

namespace hunter::lint {
namespace {

using RuleLine = std::pair<std::string, int>;

std::vector<RuleLine> RulesAndLines(const std::vector<Violation>& vs) {
  std::vector<RuleLine> out;
  out.reserve(vs.size());
  for (const Violation& v : vs) out.emplace_back(v.rule, v.line);
  return out;
}

// --------------------------------------------------------------------------
// Lexer

TEST(LexerTest, SkipsStringContentsAndRecordsComments) {
  const LexedFile lexed = Lex(
      "int x = 1; // trailing note\n"
      "const char* s = \"std::thread steady_clock rand()\";\n"
      "/* block\n   comment */ int y = 2;\n");
  for (const Token& t : lexed.tokens) {
    EXPECT_NE(t.text, "steady_clock") << "banned names in strings must not "
                                         "surface as identifier tokens";
  }
  ASSERT_EQ(lexed.comments.size(), 2u);
  EXPECT_EQ(lexed.comments[0].text, " trailing note");
  EXPECT_FALSE(lexed.comments[0].owns_line);
  EXPECT_EQ(lexed.comments[1].line, 3);
  EXPECT_TRUE(lexed.comments[1].owns_line);
}

TEST(LexerTest, CapturesIncludeDirectives) {
  const LexedFile lexed = Lex(
      "#include <vector>\n"
      "#include \"common/rng.h\"\n");
  ASSERT_EQ(lexed.includes.size(), 2u);
  EXPECT_EQ(lexed.includes[0].path, "vector");
  EXPECT_TRUE(lexed.includes[0].angled);
  EXPECT_EQ(lexed.includes[1].path, "common/rng.h");
  EXPECT_FALSE(lexed.includes[1].angled);
  EXPECT_EQ(lexed.includes[1].line, 2);
}

TEST(LexerTest, KeepsScopeResolutionAsOneToken) {
  const LexedFile lexed = Lex("a::b c : d\n");
  std::vector<std::string> texts;
  for (const Token& t : lexed.tokens) texts.push_back(t.text);
  EXPECT_EQ(texts, (std::vector<std::string>{"a", "::", "b", "c", ":", "d"}));
}

// --------------------------------------------------------------------------
// no-wall-clock

TEST(NoWallClockTest, FlagsClockSourcesAndFreeTimeCalls) {
  const std::vector<Violation> vs = LintFile(
      "src/cdb/engine.cc",
      "#include <chrono>\n"
      "auto a = std::chrono::steady_clock::now();\n"
      "auto b = time(nullptr);\n");
  EXPECT_EQ(RulesAndLines(vs),
            (std::vector<RuleLine>{{"no-wall-clock", 2}, {"no-wall-clock", 3}}));
}

TEST(NoWallClockTest, MemberAndQualifiedTimeCallsAreLegal) {
  const std::vector<Violation> vs = LintFile(
      "src/cdb/engine.cc",
      "double t1 = clock.time();\n"
      "double t2 = Budget::time(3);\n"
      "double time = 0.0;\n"
      "const common::SimClock& clock() const { return clock_; }\n"
      "double time() override;\n");
  EXPECT_TRUE(vs.empty()) << FormatViolation(vs.front());
}

TEST(NoWallClockTest, SimClockItselfIsExempt) {
  const std::vector<Violation> vs = LintFile(
      "src/common/sim_clock.h",
      "#pragma once\n"
      "// may mention steady_clock semantics in real code\n"
      "inline double Now() { return static_cast<double>(time(nullptr)); }\n");
  EXPECT_TRUE(vs.empty()) << FormatViolation(vs.front());
}

// --------------------------------------------------------------------------
// no-unseeded-rng

TEST(NoUnseededRngTest, FlagsDeviceRandAndDefaultEngines) {
  const std::vector<Violation> vs = LintFile(
      "src/ml/foo.cc",
      "std::random_device rd;\n"
      "int r = rand();\n"
      "std::mt19937 gen;\n"
      "std::mt19937 temp{};\n");
  EXPECT_EQ(RulesAndLines(vs), (std::vector<RuleLine>{{"no-unseeded-rng", 1},
                                                      {"no-unseeded-rng", 2},
                                                      {"no-unseeded-rng", 3},
                                                      {"no-unseeded-rng", 4}}));
}

TEST(NoUnseededRngTest, SeededEnginesAndReferencesAreLegal) {
  const std::vector<Violation> vs = LintFile(
      "src/ml/foo.cc",
      "std::mt19937 gen(seed);\n"
      "std::mt19937 gen2{seed};\n"
      "void Mix(std::mt19937& engine);\n"
      "using Result = std::mt19937::result_type;\n");
  EXPECT_TRUE(vs.empty()) << FormatViolation(vs.front());
}

TEST(NoUnseededRngTest, RngModuleIsExempt) {
  const std::vector<Violation> vs = LintFile(
      "src/common/rng.cc",
      "#include \"common/rng.h\"\n"
      "static std::mt19937 fallback;\n");
  EXPECT_TRUE(vs.empty()) << FormatViolation(vs.front());
}

// --------------------------------------------------------------------------
// no-naked-thread

TEST(NoNakedThreadTest, FlagsThreadAndAsync) {
  const std::vector<Violation> vs = LintFile(
      "src/controller/foo.cc",
      "std::thread t(Work);\n"
      "auto f = std::async(Work);\n"
      "std::vector<std::thread> workers;\n");
  EXPECT_EQ(RulesAndLines(vs), (std::vector<RuleLine>{{"no-naked-thread", 1},
                                                      {"no-naked-thread", 2},
                                                      {"no-naked-thread", 3}}));
}

TEST(NoNakedThreadTest, StaticsAndPoolModuleAreLegal) {
  EXPECT_TRUE(LintFile("src/controller/foo.cc",
                       "unsigned n = std::thread::hardware_concurrency();\n")
                  .empty());
  EXPECT_TRUE(LintFile("src/common/thread_pool.cc",
                       "std::thread t(Work);\n")
                  .empty());
}

// --------------------------------------------------------------------------
// no-unordered-iteration-emit

TEST(NoUnorderedIterationEmitTest, FlagsRangeForInEmittingFile) {
  const std::vector<Violation> vs = LintFile(
      "src/common/report.cc",
      "#include <cstdio>\n"
      "std::unordered_map<int, double> scores;\n"
      "void Dump() {\n"
      "  for (const auto& kv : scores) printf(\"%d\\n\", kv.first);\n"
      "}\n");
  EXPECT_EQ(RulesAndLines(vs),
            (std::vector<RuleLine>{{"no-unordered-iteration-emit", 4}}));
}

TEST(NoUnorderedIterationEmitTest, SilentFilesAndOrderedContainersAreLegal) {
  // Same iteration, but the file never emits: legal.
  EXPECT_TRUE(LintFile("src/common/quiet.cc",
                       "std::unordered_map<int, double> scores;\n"
                       "double Sum() {\n"
                       "  double s = 0;\n"
                       "  for (const auto& kv : scores) s += kv.second;\n"
                       "  return s;\n"
                       "}\n")
                  .empty());
  // Emitting file iterating an ordered container: legal.
  EXPECT_TRUE(LintFile("src/common/report.cc",
                       "#include <cstdio>\n"
                       "std::map<int, double> scores;\n"
                       "void Dump() {\n"
                       "  for (const auto& kv : scores) printf(\"x\");\n"
                       "}\n")
                  .empty());
}

TEST(NoUnorderedIterationEmitTest, TracksAliasesThroughUsing) {
  const std::vector<Violation> vs = LintFile(
      "src/common/report.cc",
      "using Index = std::unordered_map<int, int>;\n"
      "void Dump(const Index& index) {\n"
      "  for (auto kv : index) std::printf(\"%d\\n\", kv.first);\n"
      "}\n");
  EXPECT_EQ(RulesAndLines(vs),
            (std::vector<RuleLine>{{"no-unordered-iteration-emit", 3}}));
}

// --------------------------------------------------------------------------
// journal-emit-through-obs

TEST(JournalEmitTest, FlagsRawEscapedAndSchemaTagSpellings) {
  const std::vector<Violation> vs = LintFile(
      "src/controller/report.cc",
      "const char* a = \"{\\\"type\\\":\\\"span\\\",\\\"seq\\\":0}\";\n"
      "const char* b = R\"({\"type\":\"metrics\"})\";\n"
      "const char* c = \"hunter.journal.v1\";\n");
  EXPECT_EQ(RulesAndLines(vs),
            (std::vector<RuleLine>{{"journal-emit-through-obs", 1},
                                   {"journal-emit-through-obs", 2},
                                   {"journal-emit-through-obs", 3}}));
}

TEST(JournalEmitTest, ObsModuleAndNonJournalStringsAreLegal) {
  EXPECT_TRUE(LintFile("src/obs/journal.cc",
                       "const char* k = \"{\\\"type\\\":\\\"span\\\"}\";\n")
                  .empty());
  EXPECT_TRUE(LintFile("src/controller/report.cc",
                       "const char* k = \"span type metrics\";\n"
                       "const char* j = \"{\\\"type\\\":\\\"knob\\\"}\";\n")
                  .empty());
}

// --------------------------------------------------------------------------
// no-matrix-row-copy-in-loop

TEST(NoMatrixRowCopyTest, FlagsRowCopiesInLoopBodies) {
  const std::vector<Violation> vs = LintFile(
      "src/ml/gaussian_process.cc",
      "void F(const linalg::Matrix& m) {\n"
      "  for (size_t r = 0; r < m.rows(); ++r) {\n"
      "    auto row = m.Row(r);\n"
      "  }\n"
      "  for (size_t r = 0; r < m.rows(); ++r) Use(m.Row(r));\n"
      "}\n");
  EXPECT_EQ(RulesAndLines(vs),
            (std::vector<RuleLine>{{"no-matrix-row-copy-in-loop", 3},
                                   {"no-matrix-row-copy-in-loop", 5}}));
}

TEST(NoMatrixRowCopyTest, NestedLoopsFlagOnce) {
  const std::vector<Violation> vs = LintFile(
      "src/linalg/pca.cc",
      "void F(const Matrix& m, const Matrix* p) {\n"
      "  for (size_t r = 0; r < m.rows(); ++r) {\n"
      "    for (size_t c = 0; c < m.cols(); ++c) {\n"
      "      Use(p->Row(c));\n"
      "    }\n"
      "  }\n"
      "}\n");
  EXPECT_EQ(RulesAndLines(vs),
            (std::vector<RuleLine>{{"no-matrix-row-copy-in-loop", 4}}));
}

TEST(NoMatrixRowCopyTest, OutOfScopeFilesAndNonLoopUsesAreLegal) {
  // Identical code outside src/ml/ and src/linalg/: legal.
  EXPECT_TRUE(LintFile("src/controller/actor.cc",
                       "void F() { for (;;) { auto r = m.Row(0); } }\n")
                  .empty());
  // A row copy outside any loop: legal.
  EXPECT_TRUE(LintFile("src/ml/gaussian_process.cc",
                       "void F() { auto r = m.Row(0); }\n")
                  .empty());
  // The non-allocating view inside a loop: legal.
  EXPECT_TRUE(LintFile("src/ml/gaussian_process.cc",
                       "void F() {\n"
                       "  for (size_t r = 0; r < m.rows(); ++r) {\n"
                       "    auto v = m.RowView(r);\n"
                       "  }\n"
                       "}\n")
                  .empty());
}

TEST(NoMatrixRowCopyTest, SuppressibleWithReason) {
  EXPECT_TRUE(
      LintFile("src/ml/gaussian_process.cc",
               "// hunterlint: allow(no-matrix-row-copy-in-loop) mutated copy\n"
               "for (size_t r = 0; r < n; ++r) rows.push_back(m.Row(r));\n")
          .empty());
}

// --------------------------------------------------------------------------
// header hygiene

TEST(HeaderHygieneTest, RequiresGuardOnlyInHeaders) {
  const std::string source = "int Value();\n";
  EXPECT_EQ(RulesAndLines(LintFile("src/cdb/foo.h", source)),
            (std::vector<RuleLine>{{"header-guard", 1}}));
  EXPECT_TRUE(LintFile("src/cdb/foo.cc", source).empty());
}

TEST(HeaderHygieneTest, AcceptsPragmaOnceAndMatchedGuards) {
  EXPECT_TRUE(LintFile("src/a.h", "#pragma once\nint V();\n").empty());
  EXPECT_TRUE(LintFile("src/a.h",
                       "// comment first is fine\n"
                       "#ifndef HUNTER_A_H_\n"
                       "#define HUNTER_A_H_\n"
                       "#endif\n")
                  .empty());
}

TEST(HeaderHygieneTest, FlagsMismatchedGuardDefine) {
  const std::vector<Violation> vs = LintFile(
      "src/a.h",
      "#ifndef HUNTER_A_H_\n"
      "#define HUNTER_B_H_\n"
      "#endif\n");
  EXPECT_EQ(RulesAndLines(vs), (std::vector<RuleLine>{{"header-guard", 2}}));
}

TEST(HeaderHygieneTest, FlagsUsingNamespaceInHeadersOnly) {
  const std::string source = "#pragma once\nusing namespace std;\n";
  EXPECT_EQ(RulesAndLines(LintFile("src/a.h", source)),
            (std::vector<RuleLine>{{"no-using-namespace-header", 2}}));
  EXPECT_TRUE(LintFile("src/a.cc", "using namespace std;\n").empty());
}

TEST(HeaderHygieneTest, IncludeStyle) {
  const std::vector<Violation> vs = LintFile(
      "src/cdb/foo.cc",
      "#include <vector>\n"
      "#include \"common/rng.h\"\n"
      "#include \"rng.h\"\n"
      "#include \"../common/rng.h\"\n");
  EXPECT_EQ(RulesAndLines(vs), (std::vector<RuleLine>{{"include-style", 3},
                                                      {"include-style", 4}}));
}

// --------------------------------------------------------------------------
// suppression semantics

TEST(SuppressionTest, SameLineAndOwnLineFormsSuppress) {
  EXPECT_TRUE(LintFile("src/a.cc",
                       "auto t = std::chrono::steady_clock::now();  "
                       "// hunterlint: allow(no-wall-clock) timer fixture\n")
                  .empty());
  EXPECT_TRUE(LintFile("src/a.cc",
                       "// hunterlint: allow(no-wall-clock) timer fixture\n"
                       "auto t = std::chrono::steady_clock::now();\n")
                  .empty());
}

TEST(SuppressionTest, OnlyTheNamedRuleIsSuppressed) {
  const std::vector<Violation> vs = LintFile(
      "src/a.cc",
      "// hunterlint: allow(no-naked-thread) wrong rule for the next line\n"
      "auto t = std::chrono::steady_clock::now();\n");
  EXPECT_EQ(RulesAndLines(vs),
            (std::vector<RuleLine>{{"no-wall-clock", 2}}));
}

TEST(SuppressionTest, OwnLineFormDoesNotLeakPastOneLine) {
  const std::vector<Violation> vs = LintFile(
      "src/a.cc",
      "// hunterlint: allow(no-wall-clock) only covers the next line\n"
      "int unrelated = 0;\n"
      "auto t = std::chrono::steady_clock::now();\n");
  EXPECT_EQ(RulesAndLines(vs),
            (std::vector<RuleLine>{{"no-wall-clock", 3}}));
}

TEST(SuppressionTest, ReasonIsMandatory) {
  const std::vector<Violation> vs = LintFile(
      "src/a.cc",
      "// hunterlint: allow(no-wall-clock)\n"
      "auto t = std::chrono::steady_clock::now();\n");
  EXPECT_EQ(RulesAndLines(vs),
            (std::vector<RuleLine>{{"suppression-needs-reason", 1},
                                   {"no-wall-clock", 2}}));
}

TEST(SuppressionTest, UnknownRuleNamesAreReported) {
  const std::vector<Violation> vs = LintFile(
      "src/a.cc", "// hunterlint: allow(no-wallclock) typo in rule name\n");
  EXPECT_EQ(RulesAndLines(vs), (std::vector<RuleLine>{{"unknown-rule", 1}}));
}

// --------------------------------------------------------------------------
// golden fixtures

std::vector<Violation> LintFixture(const std::string& rel) {
  return LintTree(HUNTERLINT_TESTDATA_DIR, {rel});
}

TEST(FixtureTest, WallClock) {
  EXPECT_EQ(RulesAndLines(LintFixture("violations/wall_clock.cc")),
            (std::vector<RuleLine>{{"no-wall-clock", 7},
                                   {"no-wall-clock", 8},
                                   {"no-wall-clock", 9}}));
}

TEST(FixtureTest, UnseededRng) {
  EXPECT_EQ(RulesAndLines(LintFixture("violations/unseeded_rng.cc")),
            (std::vector<RuleLine>{{"no-unseeded-rng", 7},
                                   {"no-unseeded-rng", 8},
                                   {"no-unseeded-rng", 12}}));
}

TEST(FixtureTest, NakedThread) {
  EXPECT_EQ(RulesAndLines(LintFixture("violations/naked_thread.cc")),
            (std::vector<RuleLine>{{"no-naked-thread", 9},
                                   {"no-naked-thread", 10}}));
}

TEST(FixtureTest, UnorderedEmit) {
  EXPECT_EQ(RulesAndLines(LintFixture("violations/unordered_emit.cc")),
            (std::vector<RuleLine>{{"no-unordered-iteration-emit", 12}}));
}

TEST(FixtureTest, RawJournal) {
  EXPECT_EQ(RulesAndLines(LintFixture("violations/raw_journal.cc")),
            (std::vector<RuleLine>{{"journal-emit-through-obs", 7},
                                   {"journal-emit-through-obs", 11}}));
}

TEST(FixtureTest, MatrixRowCopy) {
  EXPECT_EQ(
      RulesAndLines(LintFixture("violations/src/ml/matrix_row_copy.cc")),
      (std::vector<RuleLine>{{"no-matrix-row-copy-in-loop", 10},
                             {"no-matrix-row-copy-in-loop", 14},
                             {"no-matrix-row-copy-in-loop", 17}}));
}

TEST(FixtureTest, BadHeader) {
  EXPECT_EQ(RulesAndLines(LintFixture("violations/bad_header.h")),
            (std::vector<RuleLine>{{"header-guard", 3},
                                   {"include-style", 3},
                                   {"no-using-namespace-header", 5}}));
}

TEST(FixtureTest, BadSuppression) {
  EXPECT_EQ(RulesAndLines(LintFixture("violations/bad_suppression.cc")),
            (std::vector<RuleLine>{{"suppression-needs-reason", 8},
                                   {"no-wall-clock", 9},
                                   {"unknown-rule", 11}}));
}

TEST(FixtureTest, CleanDirectoryIsClean) {
  const std::vector<std::string> files =
      CollectFiles(HUNTERLINT_TESTDATA_DIR, {"clean"});
  ASSERT_EQ(files.size(), 3u);
  const std::vector<Violation> vs =
      LintTree(HUNTERLINT_TESTDATA_DIR, files);
  EXPECT_TRUE(vs.empty()) << FormatViolation(vs.front());
}

TEST(FixtureTest, CollectFilesIsSortedAndDeduplicated) {
  const std::vector<std::string> files = CollectFiles(
      HUNTERLINT_TESTDATA_DIR, {"violations", "clean", "clean"});
  ASSERT_FALSE(files.empty());
  EXPECT_TRUE(std::is_sorted(files.begin(), files.end()));
  EXPECT_EQ(std::adjacent_find(files.begin(), files.end()), files.end());
}

TEST(FixtureTest, MissingFileReportsIoError) {
  const std::vector<Violation> vs =
      LintTree(HUNTERLINT_TESTDATA_DIR, {"does/not/exist.cc"});
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "io-error");
}

}  // namespace
}  // namespace hunter::lint
