// Unit and golden-fixture tests for hunterlint.
//
// The inline tests pin each rule's firing conditions and the suppression
// semantics; the fixture tests pin exact (rule, line) pairs against the
// checked-in files under testdata/ so the whole pipeline (lexer → rules →
// suppression → reporting) is covered end to end.

#include "hunterlint/hunterlint.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "hunterlint/lexer.h"
#include "hunterlint/report.h"
#include "hunterlint/rules.h"

namespace hunter::lint {
namespace {

using RuleLine = std::pair<std::string, int>;

std::vector<RuleLine> RulesAndLines(const std::vector<Violation>& vs) {
  std::vector<RuleLine> out;
  out.reserve(vs.size());
  for (const Violation& v : vs) out.emplace_back(v.rule, v.line);
  return out;
}

// --------------------------------------------------------------------------
// Lexer

TEST(LexerTest, SkipsStringContentsAndRecordsComments) {
  const LexedFile lexed = Lex(
      "int x = 1; // trailing note\n"
      "const char* s = \"std::thread steady_clock rand()\";\n"
      "/* block\n   comment */ int y = 2;\n");
  for (const Token& t : lexed.tokens) {
    EXPECT_NE(t.text, "steady_clock") << "banned names in strings must not "
                                         "surface as identifier tokens";
  }
  ASSERT_EQ(lexed.comments.size(), 2u);
  EXPECT_EQ(lexed.comments[0].text, " trailing note");
  EXPECT_FALSE(lexed.comments[0].owns_line);
  EXPECT_EQ(lexed.comments[1].line, 3);
  EXPECT_TRUE(lexed.comments[1].owns_line);
}

TEST(LexerTest, CapturesIncludeDirectives) {
  const LexedFile lexed = Lex(
      "#include <vector>\n"
      "#include \"common/rng.h\"\n");
  ASSERT_EQ(lexed.includes.size(), 2u);
  EXPECT_EQ(lexed.includes[0].path, "vector");
  EXPECT_TRUE(lexed.includes[0].angled);
  EXPECT_EQ(lexed.includes[1].path, "common/rng.h");
  EXPECT_FALSE(lexed.includes[1].angled);
  EXPECT_EQ(lexed.includes[1].line, 2);
}

TEST(LexerTest, KeepsScopeResolutionAsOneToken) {
  const LexedFile lexed = Lex("a::b c : d\n");
  std::vector<std::string> texts;
  for (const Token& t : lexed.tokens) texts.push_back(t.text);
  EXPECT_EQ(texts, (std::vector<std::string>{"a", "::", "b", "c", ":", "d"}));
}

TEST(LexerTest, RawStringContentsDoNotLexAsTokens) {
  const LexedFile lexed = Lex(
      "const char* s = R\"(std::thread \"quoted\" \\n)\";\n"
      "int after = 1;\n");
  for (const Token& t : lexed.tokens) {
    EXPECT_NE(t.text, "thread") << "raw string interior leaked into tokens";
  }
  // The literal's value is the verbatim interior, backslashes included.
  bool found = false;
  for (const Token& t : lexed.tokens) {
    if (t.kind == TokKind::kString) {
      EXPECT_EQ(t.text, "std::thread \"quoted\" \\n");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(LexerTest, RawStringDelimiterAndLineNumbers) {
  const LexedFile lexed = Lex(
      "auto s = R\"x(contains )\" inside)x\";\n"
      "auto t = R\"(line one\nline two)\";\n"
      "int after = 1;\n");
  // `after` sits on line 4: the second raw literal spans lines 2-3.
  bool saw_after = false;
  for (const Token& t : lexed.tokens) {
    if (t.text == "after") {
      saw_after = true;
      EXPECT_EQ(t.line, 4);
    }
  }
  EXPECT_TRUE(saw_after);
}

TEST(LexerTest, RawStringPrefixMustBeAdjacent) {
  // `R "x"` (space) and `FooR"x"` are ordinary literals, not raw ones: a
  // raw parse would run off looking for )x" and swallow the rest.
  const LexedFile a = Lex("auto v = R \"x\"; int tail = 1;\n");
  const LexedFile b = Lex("auto v = FooR\"x\"; int tail = 1;\n");
  for (const LexedFile* f : {&a, &b}) {
    bool saw_tail = false;
    for (const Token& t : f->tokens) saw_tail |= t.text == "tail";
    EXPECT_TRUE(saw_tail);
  }
}

TEST(LexerTest, DigitSeparatorsStayOneNumber) {
  const LexedFile lexed = Lex("long n = 1'000'000; int k = 0xFF'00;\n");
  std::vector<std::string> numbers;
  for (const Token& t : lexed.tokens) {
    if (t.kind == TokKind::kNumber) numbers.push_back(t.text);
  }
  EXPECT_EQ(numbers, (std::vector<std::string>{"1'000'000", "0xFF'00"}));
}

TEST(LexerTest, LineSplicesJoinIdentifiersAndComments) {
  // `ab\<newline>c` is the single identifier abc, reported on its first
  // line; a // comment ending in a backslash continues onto the next line,
  // so `int swallowed` is comment text, not code.
  const LexedFile lexed = Lex(
      "int ab\\\nc = 1;\n"
      "// trailing splice \\\nint swallowed = 2;\n"
      "int after = 3;\n");
  bool saw_joined = false;
  for (const Token& t : lexed.tokens) {
    EXPECT_NE(t.text, "swallowed");
    if (t.text == "abc") {
      saw_joined = true;
      EXPECT_EQ(t.line, 1);
    }
    if (t.text == "after") {
      EXPECT_EQ(t.line, 5);
    }
  }
  EXPECT_TRUE(saw_joined);
  ASSERT_EQ(lexed.comments.size(), 1u);
  EXPECT_NE(lexed.comments[0].text.find("swallowed"),
            std::string::npos);
}

TEST(LexerTest, SpliceInsideStringAdvancesLineCounter) {
  const LexedFile lexed = Lex(
      "const char* s = \"split \\\nacross lines\";\n"
      "int after = 1;\n");
  for (const Token& t : lexed.tokens) {
    if (t.text == "after") {
      EXPECT_EQ(t.line, 3);
    }
    if (t.kind == TokKind::kString) {
      // The splice itself is not part of the value.
      EXPECT_EQ(t.text, "split across lines");
    }
  }
}

// --------------------------------------------------------------------------
// no-wall-clock

TEST(NoWallClockTest, FlagsClockSourcesAndFreeTimeCalls) {
  const std::vector<Violation> vs = LintFile(
      "src/cdb/engine.cc",
      "#include <chrono>\n"
      "auto a = std::chrono::steady_clock::now();\n"
      "auto b = time(nullptr);\n");
  EXPECT_EQ(RulesAndLines(vs),
            (std::vector<RuleLine>{{"no-wall-clock", 2}, {"no-wall-clock", 3}}));
}

TEST(NoWallClockTest, MemberAndQualifiedTimeCallsAreLegal) {
  const std::vector<Violation> vs = LintFile(
      "src/cdb/engine.cc",
      "double t1 = clock.time();\n"
      "double t2 = Budget::time(3);\n"
      "double time = 0.0;\n"
      "const common::SimClock& clock() const { return clock_; }\n"
      "double time() override;\n");
  EXPECT_TRUE(vs.empty()) << FormatViolation(vs.front());
}

TEST(NoWallClockTest, SimClockItselfIsExempt) {
  const std::vector<Violation> vs = LintFile(
      "src/common/sim_clock.h",
      "#pragma once\n"
      "// may mention steady_clock semantics in real code\n"
      "inline double Now() { return static_cast<double>(time(nullptr)); }\n");
  EXPECT_TRUE(vs.empty()) << FormatViolation(vs.front());
}

// --------------------------------------------------------------------------
// no-unseeded-rng

TEST(NoUnseededRngTest, FlagsDeviceRandAndDefaultEngines) {
  const std::vector<Violation> vs = LintFile(
      "src/ml/foo.cc",
      "std::random_device rd;\n"
      "int r = rand();\n"
      "std::mt19937 gen;\n"
      "std::mt19937 temp{};\n");
  EXPECT_EQ(RulesAndLines(vs), (std::vector<RuleLine>{{"no-unseeded-rng", 1},
                                                      {"no-unseeded-rng", 2},
                                                      {"no-unseeded-rng", 3},
                                                      {"no-unseeded-rng", 4}}));
}

TEST(NoUnseededRngTest, SeededEnginesAndReferencesAreLegal) {
  const std::vector<Violation> vs = LintFile(
      "src/ml/foo.cc",
      "std::mt19937 gen(seed);\n"
      "std::mt19937 gen2{seed};\n"
      "void Mix(std::mt19937& engine);\n"
      "using Result = std::mt19937::result_type;\n");
  EXPECT_TRUE(vs.empty()) << FormatViolation(vs.front());
}

TEST(NoUnseededRngTest, RngModuleIsExempt) {
  const std::vector<Violation> vs = LintFile(
      "src/common/rng.cc",
      "#include \"common/rng.h\"\n"
      "static std::mt19937 fallback;\n");
  EXPECT_TRUE(vs.empty()) << FormatViolation(vs.front());
}

// --------------------------------------------------------------------------
// no-naked-thread

TEST(NoNakedThreadTest, FlagsThreadAndAsync) {
  const std::vector<Violation> vs = LintFile(
      "src/controller/foo.cc",
      "std::thread t(Work);\n"
      "auto f = std::async(Work);\n"
      "std::vector<std::thread> workers;\n");
  EXPECT_EQ(RulesAndLines(vs), (std::vector<RuleLine>{{"no-naked-thread", 1},
                                                      {"no-naked-thread", 2},
                                                      {"no-naked-thread", 3}}));
}

TEST(NoNakedThreadTest, StaticsAndPoolModuleAreLegal) {
  EXPECT_TRUE(LintFile("src/controller/foo.cc",
                       "unsigned n = std::thread::hardware_concurrency();\n")
                  .empty());
  EXPECT_TRUE(LintFile("src/common/thread_pool.cc",
                       "std::thread t(Work);\n")
                  .empty());
}

// --------------------------------------------------------------------------
// no-unordered-iteration-emit

TEST(NoUnorderedIterationEmitTest, FlagsRangeForInEmittingFile) {
  const std::vector<Violation> vs = LintFile(
      "src/common/report.cc",
      "#include <cstdio>\n"
      "std::unordered_map<int, double> scores;\n"
      "void Dump() {\n"
      "  for (const auto& kv : scores) printf(\"%d\\n\", kv.first);\n"
      "}\n");
  EXPECT_EQ(RulesAndLines(vs),
            (std::vector<RuleLine>{{"no-unordered-iteration-emit", 4}}));
}

TEST(NoUnorderedIterationEmitTest, SilentFilesAndOrderedContainersAreLegal) {
  // Same iteration, but the file never emits: legal.
  EXPECT_TRUE(LintFile("src/common/quiet.cc",
                       "std::unordered_map<int, double> scores;\n"
                       "double Sum() {\n"
                       "  double s = 0;\n"
                       "  for (const auto& kv : scores) s += kv.second;\n"
                       "  return s;\n"
                       "}\n")
                  .empty());
  // Emitting file iterating an ordered container: legal.
  EXPECT_TRUE(LintFile("src/common/report.cc",
                       "#include <cstdio>\n"
                       "std::map<int, double> scores;\n"
                       "void Dump() {\n"
                       "  for (const auto& kv : scores) printf(\"x\");\n"
                       "}\n")
                  .empty());
}

TEST(NoUnorderedIterationEmitTest, TracksAliasesThroughUsing) {
  const std::vector<Violation> vs = LintFile(
      "src/common/report.cc",
      "using Index = std::unordered_map<int, int>;\n"
      "void Dump(const Index& index) {\n"
      "  for (auto kv : index) std::printf(\"%d\\n\", kv.first);\n"
      "}\n");
  EXPECT_EQ(RulesAndLines(vs),
            (std::vector<RuleLine>{{"no-unordered-iteration-emit", 3}}));
}

// --------------------------------------------------------------------------
// journal-emit-through-obs

TEST(JournalEmitTest, FlagsRawEscapedAndSchemaTagSpellings) {
  const std::vector<Violation> vs = LintFile(
      "src/controller/report.cc",
      "const char* a = \"{\\\"type\\\":\\\"span\\\",\\\"seq\\\":0}\";\n"
      "const char* b = R\"({\"type\":\"metrics\"})\";\n"
      "const char* c = \"hunter.journal.v1\";\n");
  EXPECT_EQ(RulesAndLines(vs),
            (std::vector<RuleLine>{{"journal-emit-through-obs", 1},
                                   {"journal-emit-through-obs", 2},
                                   {"journal-emit-through-obs", 3}}));
}

TEST(JournalEmitTest, ObsModuleAndNonJournalStringsAreLegal) {
  EXPECT_TRUE(LintFile("src/obs/journal.cc",
                       "const char* k = \"{\\\"type\\\":\\\"span\\\"}\";\n")
                  .empty());
  EXPECT_TRUE(LintFile("src/controller/report.cc",
                       "const char* k = \"span type metrics\";\n"
                       "const char* j = \"{\\\"type\\\":\\\"knob\\\"}\";\n")
                  .empty());
}

// --------------------------------------------------------------------------
// no-matrix-row-copy-in-loop

TEST(NoMatrixRowCopyTest, FlagsRowCopiesInLoopBodies) {
  const std::vector<Violation> vs = LintFile(
      "src/ml/gaussian_process.cc",
      "void F(const linalg::Matrix& m) {\n"
      "  for (size_t r = 0; r < m.rows(); ++r) {\n"
      "    auto row = m.Row(r);\n"
      "  }\n"
      "  for (size_t r = 0; r < m.rows(); ++r) Use(m.Row(r));\n"
      "}\n");
  EXPECT_EQ(RulesAndLines(vs),
            (std::vector<RuleLine>{{"no-matrix-row-copy-in-loop", 3},
                                   {"no-matrix-row-copy-in-loop", 5}}));
}

TEST(NoMatrixRowCopyTest, NestedLoopsFlagOnce) {
  const std::vector<Violation> vs = LintFile(
      "src/linalg/pca.cc",
      "void F(const Matrix& m, const Matrix* p) {\n"
      "  for (size_t r = 0; r < m.rows(); ++r) {\n"
      "    for (size_t c = 0; c < m.cols(); ++c) {\n"
      "      Use(p->Row(c));\n"
      "    }\n"
      "  }\n"
      "}\n");
  EXPECT_EQ(RulesAndLines(vs),
            (std::vector<RuleLine>{{"no-matrix-row-copy-in-loop", 4}}));
}

TEST(NoMatrixRowCopyTest, OutOfScopeFilesAndNonLoopUsesAreLegal) {
  // Identical code outside src/ml/ and src/linalg/: legal.
  EXPECT_TRUE(LintFile("src/controller/actor.cc",
                       "void F() { for (;;) { auto r = m.Row(0); } }\n")
                  .empty());
  // A row copy outside any loop: legal.
  EXPECT_TRUE(LintFile("src/ml/gaussian_process.cc",
                       "void F() { auto r = m.Row(0); }\n")
                  .empty());
  // The non-allocating view inside a loop: legal.
  EXPECT_TRUE(LintFile("src/ml/gaussian_process.cc",
                       "void F() {\n"
                       "  for (size_t r = 0; r < m.rows(); ++r) {\n"
                       "    auto v = m.RowView(r);\n"
                       "  }\n"
                       "}\n")
                  .empty());
}

TEST(NoMatrixRowCopyTest, SuppressibleWithReason) {
  EXPECT_TRUE(
      LintFile("src/ml/gaussian_process.cc",
               "// hunterlint: allow(no-matrix-row-copy-in-loop) mutated copy\n"
               "for (size_t r = 0; r < n; ++r) rows.push_back(m.Row(r));\n")
          .empty());
}

// --------------------------------------------------------------------------
// guarded-by

TEST(GuardedByTest, LockGuardScopeCoversAccesses) {
  const std::vector<Violation> vs = LintFile(
      "src/cdb/foo.cc",
      "#include <mutex>\n"
      "class C {\n"
      " public:\n"
      "  void Ok() {\n"
      "    std::lock_guard<std::mutex> lock(mu_);\n"
      "    ++count_;\n"
      "  }\n"
      "  void Bad() { ++count_; }\n"
      "  void AfterScope() {\n"
      "    { std::lock_guard<std::mutex> lock(mu_); ++count_; }\n"
      "    ++count_;\n"
      "  }\n"
      " private:\n"
      "  std::mutex mu_;\n"
      "  int count_ = 0;  // hunterlint: guarded_by(mu_)\n"
      "};\n");
  EXPECT_EQ(RulesAndLines(vs), (std::vector<RuleLine>{{"guarded-by", 8},
                                                      {"guarded-by", 11}}));
}

TEST(GuardedByTest, RequiresSeedsHeldSetAndPolicesCallers) {
  const std::vector<Violation> vs = LintFile(
      "src/cdb/foo.cc",
      "#include <mutex>\n"
      "class C {\n"
      " public:\n"
      "  void LockedCall() {\n"
      "    std::lock_guard<std::mutex> lock(mu_);\n"
      "    Bump();\n"
      "  }\n"
      "  void UnlockedCall() { Bump(); }\n"
      " private:\n"
      "  // hunterlint: requires(mu_)\n"
      "  void Bump() { ++count_; }\n"
      "  std::mutex mu_;\n"
      "  int count_ = 0;  // hunterlint: guarded_by(mu_)\n"
      "};\n");
  EXPECT_EQ(RulesAndLines(vs), (std::vector<RuleLine>{{"guarded-by", 8}}));
}

TEST(GuardedByTest, ConstructorsAndDestructorsAreExempt) {
  EXPECT_TRUE(LintFile("src/cdb/foo.cc",
                       "#include <mutex>\n"
                       "class C {\n"
                       " public:\n"
                       "  C() { count_ = 0; }\n"
                       "  ~C() { count_ = -1; }\n"
                       " private:\n"
                       "  std::mutex mu_;\n"
                       "  int count_;  // hunterlint: guarded_by(mu_)\n"
                       "};\n")
                  .empty());
}

TEST(GuardedByTest, UniqueLockDeferThenManualLockUnlock) {
  const std::vector<Violation> vs = LintFile(
      "src/cdb/foo.cc",
      "#include <mutex>\n"
      "class C {\n"
      " public:\n"
      "  void F() {\n"
      "    std::unique_lock<std::mutex> lk(mu_, std::defer_lock);\n"
      "    ++count_;\n"
      "    lk.lock();\n"
      "    ++count_;\n"
      "    lk.unlock();\n"
      "    ++count_;\n"
      "  }\n"
      " private:\n"
      "  std::mutex mu_;\n"
      "  int count_ = 0;  // hunterlint: guarded_by(mu_)\n"
      "};\n");
  EXPECT_EQ(RulesAndLines(vs), (std::vector<RuleLine>{{"guarded-by", 6},
                                                      {"guarded-by", 10}}));
}

TEST(GuardedByTest, LambdasInheritTheHeldSet) {
  // The canonical cv.wait(lock, predicate) shape: the predicate runs with
  // the lock held, so its guarded accesses are legal.
  EXPECT_TRUE(
      LintFile("src/cdb/foo.cc",
               "#include <condition_variable>\n"
               "#include <mutex>\n"
               "class C {\n"
               " public:\n"
               "  void Wait() {\n"
               "    std::unique_lock<std::mutex> lock(mu_);\n"
               "    cv_.wait(lock, [this] { return ready_; });\n"
               "  }\n"
               " private:\n"
               "  std::mutex mu_;\n"
               "  std::condition_variable cv_;\n"
               "  bool ready_ = false;  // hunterlint: guarded_by(mu_)\n"
               "};\n")
          .empty());
}

TEST(GuardedByTest, OutOfLineMethodsResolveTheirClass) {
  const std::vector<Violation> vs = LintFile(
      "src/cdb/foo.cc",
      "#include <mutex>\n"
      "class C {\n"
      " public:\n"
      "  void Ok();\n"
      "  void Bad();\n"
      " private:\n"
      "  std::mutex mu_;\n"
      "  int count_ = 0;  // hunterlint: guarded_by(mu_)\n"
      "};\n"
      "void C::Ok() {\n"
      "  std::lock_guard<std::mutex> lock(mu_);\n"
      "  ++count_;\n"
      "}\n"
      "void C::Bad() { ++count_; }\n");
  EXPECT_EQ(RulesAndLines(vs), (std::vector<RuleLine>{{"guarded-by", 14}}));
}

TEST(GuardedByTest, OtherObjectsMembersAreNotChecked) {
  // `other->count_` is a different instance whose lock state we cannot
  // track; only unqualified / this-> accesses are policed.
  EXPECT_TRUE(LintFile("src/cdb/foo.cc",
                       "#include <mutex>\n"
                       "class C {\n"
                       " public:\n"
                       "  int Peek(const C* other) { return other->count_; }\n"
                       " private:\n"
                       "  std::mutex mu_;\n"
                       "  int count_ = 0;  // hunterlint: guarded_by(mu_)\n"
                       "};\n")
                  .empty());
}

// --------------------------------------------------------------------------
// no-alloc-in-hot-loop

TEST(HotLoopTest, FlagsPerIterationAllocations) {
  const std::vector<Violation> vs = LintFile(
      "src/ml/foo.cc",
      "#include <vector>\n"
      "// hunterlint: hot\n"
      "void F(std::vector<double>* out) {\n"
      "  while (out->size() < 8) {\n"
      "    out->push_back(0.0);\n"
      "    double* p = new double[4];\n"
      "    delete[] p;\n"
      "  }\n"
      "  for (int i = 0; i < 4; ++i) out->resize(8);\n"
      "}\n");
  EXPECT_EQ(RulesAndLines(vs),
            (std::vector<RuleLine>{{"no-alloc-in-hot-loop", 5},
                                   {"no-alloc-in-hot-loop", 6},
                                   {"no-alloc-in-hot-loop", 9}}));
}

TEST(HotLoopTest, PreLoopAllocationAndColdFunctionsAreLegal) {
  // Hoisted buffers before the loop are the fix the rule asks for; the
  // same loop body in an unannotated function is out of scope.
  EXPECT_TRUE(LintFile("src/ml/foo.cc",
                       "#include <vector>\n"
                       "// hunterlint: hot\n"
                       "void Hot(std::vector<double>* out, int n) {\n"
                       "  out->resize(static_cast<size_t>(n));\n"
                       "  std::vector<double> tmp(4);\n"
                       "  for (int i = 0; i < n; ++i) (*out)[i] = tmp[0];\n"
                       "}\n"
                       "void Cold(std::vector<double>* out, int n) {\n"
                       "  for (int i = 0; i < n; ++i) out->push_back(0.0);\n"
                       "}\n")
                  .empty());
}

TEST(HotLoopTest, VectorTypeReferencesInLoopsAreLegal) {
  // vector<T>& / vector<T>* mention the type without constructing one.
  EXPECT_TRUE(LintFile(
                  "src/ml/foo.cc",
                  "#include <vector>\n"
                  "// hunterlint: hot\n"
                  "double F(const std::vector<std::vector<double>>& rows) {\n"
                  "  double s = 0.0;\n"
                  "  for (size_t i = 0; i < rows.size(); ++i) {\n"
                  "    const std::vector<double>& row = rows[i];\n"
                  "    s += row[0];\n"
                  "  }\n"
                  "  return s;\n"
                  "}\n")
                  .empty());
}

// --------------------------------------------------------------------------
// deadlock-order

TEST(DeadlockOrderTest, FlagsInconsistentOrderAtEverySite) {
  const std::vector<Violation> vs = LintFile(
      "src/cdb/foo.cc",
      "#include <mutex>\n"
      "class C {\n"
      " public:\n"
      "  void Forward() {\n"
      "    std::lock_guard<std::mutex> a(a_);\n"
      "    std::lock_guard<std::mutex> b(b_);\n"
      "  }\n"
      "  void Backward() {\n"
      "    std::lock_guard<std::mutex> b(b_);\n"
      "    std::lock_guard<std::mutex> a(a_);\n"
      "  }\n"
      " private:\n"
      "  std::mutex a_;\n"
      "  std::mutex b_;\n"
      "};\n");
  EXPECT_EQ(RulesAndLines(vs), (std::vector<RuleLine>{{"deadlock-order", 6},
                                                      {"deadlock-order", 10}}));
}

TEST(DeadlockOrderTest, FlagsReacquisitionOfAHeldLock) {
  const std::vector<Violation> vs = LintFile(
      "src/cdb/foo.cc",
      "#include <mutex>\n"
      "class C {\n"
      " public:\n"
      "  void F() {\n"
      "    std::lock_guard<std::mutex> first(mu_);\n"
      "    std::lock_guard<std::mutex> again(mu_);\n"
      "  }\n"
      " private:\n"
      "  std::mutex mu_;\n"
      "};\n");
  EXPECT_EQ(RulesAndLines(vs), (std::vector<RuleLine>{{"deadlock-order", 6}}));
}

TEST(DeadlockOrderTest, ConsistentOrderAndScopedAcquisitionsAreLegal) {
  EXPECT_TRUE(LintFile("src/cdb/foo.cc",
                       "#include <mutex>\n"
                       "class C {\n"
                       " public:\n"
                       "  void F() {\n"
                       "    std::lock_guard<std::mutex> a(a_);\n"
                       "    std::lock_guard<std::mutex> b(b_);\n"
                       "  }\n"
                       "  void G() {\n"
                       "    { std::lock_guard<std::mutex> a(a_); }\n"
                       "    std::lock_guard<std::mutex> b(b_);\n"
                       "  }\n"
                       " private:\n"
                       "  std::mutex a_;\n"
                       "  std::mutex b_;\n"
                       "};\n")
                  .empty());
}

TEST(DeadlockOrderTest, ManualMutexLockCallsParticipate) {
  const std::vector<Violation> vs = LintFile(
      "src/cdb/foo.cc",
      "#include <mutex>\n"
      "class C {\n"
      " public:\n"
      "  void Forward() {\n"
      "    a_.lock();\n"
      "    b_.lock();\n"
      "    b_.unlock();\n"
      "    a_.unlock();\n"
      "  }\n"
      "  void Backward() {\n"
      "    b_.lock();\n"
      "    a_.lock();\n"
      "    a_.unlock();\n"
      "    b_.unlock();\n"
      "  }\n"
      " private:\n"
      "  std::mutex a_;\n"
      "  std::mutex b_;\n"
      "};\n");
  EXPECT_EQ(RulesAndLines(vs), (std::vector<RuleLine>{{"deadlock-order", 6},
                                                      {"deadlock-order", 12}}));
}

// --------------------------------------------------------------------------
// header hygiene

TEST(HeaderHygieneTest, RequiresGuardOnlyInHeaders) {
  const std::string source = "int Value();\n";
  EXPECT_EQ(RulesAndLines(LintFile("src/cdb/foo.h", source)),
            (std::vector<RuleLine>{{"header-guard", 1}}));
  EXPECT_TRUE(LintFile("src/cdb/foo.cc", source).empty());
}

TEST(HeaderHygieneTest, AcceptsPragmaOnceAndMatchedGuards) {
  EXPECT_TRUE(LintFile("src/a.h", "#pragma once\nint V();\n").empty());
  EXPECT_TRUE(LintFile("src/a.h",
                       "// comment first is fine\n"
                       "#ifndef HUNTER_A_H_\n"
                       "#define HUNTER_A_H_\n"
                       "#endif\n")
                  .empty());
}

TEST(HeaderHygieneTest, FlagsMismatchedGuardDefine) {
  const std::vector<Violation> vs = LintFile(
      "src/a.h",
      "#ifndef HUNTER_A_H_\n"
      "#define HUNTER_B_H_\n"
      "#endif\n");
  EXPECT_EQ(RulesAndLines(vs), (std::vector<RuleLine>{{"header-guard", 2}}));
}

TEST(HeaderHygieneTest, FlagsUsingNamespaceInHeadersOnly) {
  const std::string source = "#pragma once\nusing namespace std;\n";
  EXPECT_EQ(RulesAndLines(LintFile("src/a.h", source)),
            (std::vector<RuleLine>{{"no-using-namespace-header", 2}}));
  EXPECT_TRUE(LintFile("src/a.cc", "using namespace std;\n").empty());
}

TEST(HeaderHygieneTest, IncludeStyle) {
  const std::vector<Violation> vs = LintFile(
      "src/cdb/foo.cc",
      "#include <vector>\n"
      "#include \"common/rng.h\"\n"
      "#include \"rng.h\"\n"
      "#include \"../common/rng.h\"\n");
  EXPECT_EQ(RulesAndLines(vs), (std::vector<RuleLine>{{"include-style", 3},
                                                      {"include-style", 4}}));
}

// --------------------------------------------------------------------------
// suppression semantics

TEST(SuppressionTest, SameLineAndOwnLineFormsSuppress) {
  EXPECT_TRUE(LintFile("src/a.cc",
                       "auto t = std::chrono::steady_clock::now();  "
                       "// hunterlint: allow(no-wall-clock) timer fixture\n")
                  .empty());
  EXPECT_TRUE(LintFile("src/a.cc",
                       "// hunterlint: allow(no-wall-clock) timer fixture\n"
                       "auto t = std::chrono::steady_clock::now();\n")
                  .empty());
}

TEST(SuppressionTest, OnlyTheNamedRuleIsSuppressed) {
  const std::vector<Violation> vs = LintFile(
      "src/a.cc",
      "// hunterlint: allow(no-naked-thread) wrong rule for the next line\n"
      "auto t = std::chrono::steady_clock::now();\n");
  EXPECT_EQ(RulesAndLines(vs),
            (std::vector<RuleLine>{{"no-wall-clock", 2}}));
}

TEST(SuppressionTest, OwnLineFormDoesNotLeakPastOneLine) {
  const std::vector<Violation> vs = LintFile(
      "src/a.cc",
      "// hunterlint: allow(no-wall-clock) only covers the next line\n"
      "int unrelated = 0;\n"
      "auto t = std::chrono::steady_clock::now();\n");
  EXPECT_EQ(RulesAndLines(vs),
            (std::vector<RuleLine>{{"no-wall-clock", 3}}));
}

TEST(SuppressionTest, ReasonIsMandatory) {
  const std::vector<Violation> vs = LintFile(
      "src/a.cc",
      "// hunterlint: allow(no-wall-clock)\n"
      "auto t = std::chrono::steady_clock::now();\n");
  EXPECT_EQ(RulesAndLines(vs),
            (std::vector<RuleLine>{{"suppression-needs-reason", 1},
                                   {"no-wall-clock", 2}}));
}

TEST(SuppressionTest, UnknownRuleNamesAreReported) {
  const std::vector<Violation> vs = LintFile(
      "src/a.cc", "// hunterlint: allow(no-wallclock) typo in rule name\n");
  EXPECT_EQ(RulesAndLines(vs), (std::vector<RuleLine>{{"unknown-rule", 1}}));
}

TEST(SuppressionTest, SemanticRulesAreSuppressible) {
  // allow(guarded-by) with a reason silences the semantic rule like any
  // token-level one; the annotation lives on the violating line.
  EXPECT_TRUE(
      LintFile("src/cdb/foo.cc",
               "#include <mutex>\n"
               "class C {\n"
               " public:\n"
               "  // hunterlint: allow(guarded-by) racy read is tolerated\n"
               "  int Peek() const { return count_; }\n"
               " private:\n"
               "  std::mutex mu_;\n"
               "  int count_ = 0;  // hunterlint: guarded_by(mu_)\n"
               "};\n")
          .empty());
  EXPECT_TRUE(
      LintFile("src/ml/foo.cc",
               "#include <vector>\n"
               "// hunterlint: hot\n"
               "void F(std::vector<double>* out) {\n"
               "  for (int i = 0; i < 4; ++i) {\n"
               "    out->push_back(0.0);  "
               "// hunterlint: allow(no-alloc-in-hot-loop) startup only\n"
               "  }\n"
               "}\n")
          .empty());
}

TEST(SuppressionTest, SemanticRuleSuppressionStillNeedsAReason) {
  const std::vector<Violation> vs = LintFile(
      "src/cdb/foo.cc",
      "#include <mutex>\n"
      "class C {\n"
      " public:\n"
      "  // hunterlint: allow(guarded-by)\n"
      "  int Peek() const { return count_; }\n"
      " private:\n"
      "  std::mutex mu_;\n"
      "  int count_ = 0;  // hunterlint: guarded_by(mu_)\n"
      "};\n");
  EXPECT_EQ(RulesAndLines(vs),
            (std::vector<RuleLine>{{"suppression-needs-reason", 4},
                                   {"guarded-by", 5}}));
}

TEST(SuppressionTest, NewRuleNamesAreKnownToAllow) {
  // Naming any of the semantic rules in allow() must not trip unknown-rule.
  for (const char* rule :
       {"guarded-by", "no-alloc-in-hot-loop", "deadlock-order"}) {
    const std::vector<Violation> vs = LintFile(
        "src/a.cc", std::string("// hunterlint: allow(") + rule +
                        ") reason text here\n");
    EXPECT_TRUE(vs.empty()) << rule << ": " << FormatViolation(vs.front());
  }
}

// --------------------------------------------------------------------------
// JSON reports and the baseline ratchet

TEST(ReportTest, ViolationsJsonRoundTrips) {
  std::vector<Violation> vs;
  vs.push_back({"no-wall-clock", "src/a.cc", 3,
                "message with \"quotes\", back\\slash and\nnewline"});
  vs.push_back({"header-guard", "src/b.h", 12, "plain"});
  const std::string json = ViolationsToJson(vs);
  std::vector<Violation> parsed;
  std::string error;
  ASSERT_TRUE(ParseViolationsJson(json, &parsed, &error)) << error;
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].path, vs[0].path);
  EXPECT_EQ(parsed[0].line, vs[0].line);
  EXPECT_EQ(parsed[0].rule, vs[0].rule);
  EXPECT_EQ(parsed[0].message, vs[0].message);
  EXPECT_EQ(parsed[1].rule, "header-guard");
  // Canonical: re-serializing the parse reproduces the bytes.
  EXPECT_EQ(ViolationsToJson(parsed), json);
}

TEST(ReportTest, ParseRejectsMalformedJson) {
  std::vector<Violation> parsed;
  std::string error;
  EXPECT_FALSE(ParseViolationsJson("not json at all", &parsed, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(ParseViolationsJson("{\"tool\": \"hunterlint\"", &parsed,
                                   &error));
}

TEST(ReportTest, BaselineRoundTripsByteIdentically) {
  std::vector<Violation> vs;
  vs.push_back({"no-wall-clock", "src/a.cc", 3, "m1"});
  vs.push_back({"no-wall-clock", "src/a.cc", 9, "m2"});
  vs.push_back({"guarded-by", "src/b.cc", 1, "m3"});
  const std::vector<BaselineEntry> entries = BaselineFromViolations(vs);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0], (BaselineEntry{"src/a.cc", "no-wall-clock", 2}));
  EXPECT_EQ(entries[1], (BaselineEntry{"src/b.cc", "guarded-by", 1}));
  const std::string json = BaselineToJson(entries);
  std::vector<BaselineEntry> parsed;
  std::string error;
  ASSERT_TRUE(ParseBaselineJson(json, &parsed, &error)) << error;
  EXPECT_EQ(parsed, entries);
  EXPECT_EQ(BaselineToJson(parsed), json);
}

TEST(ReportTest, EmptyBaselineHasPinnedCanonicalBytes) {
  // The checked-in tools/hunterlint/baseline.json must stay exactly these
  // bytes (debt is frozen at zero); see DESIGN.md §12.
  EXPECT_EQ(BaselineToJson({}),
            "{\n"
            "  \"tool\": \"hunterlint\",\n"
            "  \"version\": 1,\n"
            "  \"entries\": []\n"
            "}\n");
}

TEST(ReportTest, ApplyBaselineForgivesOnlyTheFirstCountPerKey) {
  std::vector<Violation> vs;
  vs.push_back({"no-wall-clock", "src/a.cc", 3, "first"});
  vs.push_back({"no-wall-clock", "src/a.cc", 9, "second"});
  vs.push_back({"no-wall-clock", "src/a.cc", 12, "third"});
  vs.push_back({"guarded-by", "src/b.cc", 1, "other key"});
  const std::vector<BaselineEntry> baseline = {
      {"src/a.cc", "no-wall-clock", 2}};
  const std::vector<Violation> rest = ApplyBaseline(vs, baseline);
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[0].message, "third");
  EXPECT_EQ(rest[1].message, "other key");
  // An empty baseline forgives nothing.
  EXPECT_EQ(ApplyBaseline(vs, {}).size(), vs.size());
}

// --------------------------------------------------------------------------
// golden fixtures

std::vector<Violation> LintFixture(const std::string& rel) {
  return LintTree(HUNTERLINT_TESTDATA_DIR, {rel});
}

TEST(FixtureTest, WallClock) {
  EXPECT_EQ(RulesAndLines(LintFixture("violations/wall_clock.cc")),
            (std::vector<RuleLine>{{"no-wall-clock", 7},
                                   {"no-wall-clock", 8},
                                   {"no-wall-clock", 9}}));
}

TEST(FixtureTest, UnseededRng) {
  EXPECT_EQ(RulesAndLines(LintFixture("violations/unseeded_rng.cc")),
            (std::vector<RuleLine>{{"no-unseeded-rng", 7},
                                   {"no-unseeded-rng", 8},
                                   {"no-unseeded-rng", 12}}));
}

TEST(FixtureTest, NakedThread) {
  EXPECT_EQ(RulesAndLines(LintFixture("violations/naked_thread.cc")),
            (std::vector<RuleLine>{{"no-naked-thread", 9},
                                   {"no-naked-thread", 10}}));
}

TEST(FixtureTest, UnorderedEmit) {
  EXPECT_EQ(RulesAndLines(LintFixture("violations/unordered_emit.cc")),
            (std::vector<RuleLine>{{"no-unordered-iteration-emit", 12}}));
}

TEST(FixtureTest, RawJournal) {
  EXPECT_EQ(RulesAndLines(LintFixture("violations/raw_journal.cc")),
            (std::vector<RuleLine>{{"journal-emit-through-obs", 7},
                                   {"journal-emit-through-obs", 11}}));
}

TEST(FixtureTest, MatrixRowCopy) {
  EXPECT_EQ(
      RulesAndLines(LintFixture("violations/src/ml/matrix_row_copy.cc")),
      (std::vector<RuleLine>{{"no-matrix-row-copy-in-loop", 10},
                             {"no-matrix-row-copy-in-loop", 14},
                             {"no-matrix-row-copy-in-loop", 17}}));
}

TEST(FixtureTest, RawIntrinsics) {
  EXPECT_EQ(RulesAndLines(LintFixture("violations/raw_intrinsics.cc")),
            (std::vector<RuleLine>{{"no-raw-intrinsics-outside-simd", 8},
                                   {"no-raw-intrinsics-outside-simd", 8},
                                   {"no-raw-intrinsics-outside-simd", 10},
                                   {"no-raw-intrinsics-outside-simd", 10},
                                   {"no-raw-intrinsics-outside-simd", 10},
                                   {"no-raw-intrinsics-outside-simd", 11},
                                   {"no-raw-intrinsics-outside-simd", 11},
                                   {"no-raw-intrinsics-outside-simd", 12}}));
}

TEST(FixtureTest, BadHeader) {
  EXPECT_EQ(RulesAndLines(LintFixture("violations/bad_header.h")),
            (std::vector<RuleLine>{{"header-guard", 3},
                                   {"include-style", 3},
                                   {"no-using-namespace-header", 5}}));
}

TEST(FixtureTest, BadSuppression) {
  EXPECT_EQ(RulesAndLines(LintFixture("violations/bad_suppression.cc")),
            (std::vector<RuleLine>{{"suppression-needs-reason", 8},
                                   {"no-wall-clock", 9},
                                   {"unknown-rule", 11}}));
}

TEST(FixtureTest, GuardedBy) {
  EXPECT_EQ(RulesAndLines(LintFixture("violations/guarded_by.cc")),
            (std::vector<RuleLine>{{"guarded-by", 18},
                                   {"guarded-by", 22},
                                   {"guarded-by", 30}}));
}

TEST(FixtureTest, HotAlloc) {
  EXPECT_EQ(RulesAndLines(LintFixture("violations/hot_alloc.cc")),
            (std::vector<RuleLine>{{"no-alloc-in-hot-loop", 14},
                                   {"no-alloc-in-hot-loop", 15},
                                   {"no-alloc-in-hot-loop", 17},
                                   {"no-alloc-in-hot-loop", 19}}));
}

TEST(FixtureTest, DeadlockOrder) {
  EXPECT_EQ(RulesAndLines(LintFixture("violations/deadlock_order.cc")),
            (std::vector<RuleLine>{{"deadlock-order", 14},
                                   {"deadlock-order", 19},
                                   {"deadlock-order", 24}}));
}

TEST(FixtureTest, CleanDirectoryIsClean) {
  const std::vector<std::string> files =
      CollectFiles(HUNTERLINT_TESTDATA_DIR, {"clean"});
  ASSERT_EQ(files.size(), 5u);
  const std::vector<Violation> vs =
      LintTree(HUNTERLINT_TESTDATA_DIR, files);
  EXPECT_TRUE(vs.empty()) << FormatViolation(vs.front());
}

TEST(FixtureTest, CollectFilesIsSortedAndDeduplicated) {
  const std::vector<std::string> files = CollectFiles(
      HUNTERLINT_TESTDATA_DIR, {"violations", "clean", "clean"});
  ASSERT_FALSE(files.empty());
  EXPECT_TRUE(std::is_sorted(files.begin(), files.end()));
  EXPECT_EQ(std::adjacent_find(files.begin(), files.end()), files.end());
}

TEST(FixtureTest, MissingFileReportsIoError) {
  const std::vector<Violation> vs =
      LintTree(HUNTERLINT_TESTDATA_DIR, {"does/not/exist.cc"});
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "io-error");
}

}  // namespace
}  // namespace hunter::lint
