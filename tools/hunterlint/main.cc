// hunterlint — static checks for HUNTER's determinism invariants.
//
// Usage:
//   hunterlint [--root DIR] [--list-rules] [--format=text|json]
//              [--baseline FILE] [--write-baseline FILE] [PATH...]
//
// PATHs (files or directories, default: src tests bench examples) are
// resolved against --root (default: current directory) and scanned for
// .h/.hpp/.cc/.cpp/.cxx files.
//
// --format=json prints the canonical machine-readable report (consumed by
// tools/lintdiff) to stdout instead of the human lines on stderr.
// --baseline FILE forgives violations recorded in the ratchet file: for
// each (path, rule) the first `count` findings pass, anything beyond fails,
// so recorded debt is frozen and enforced non-increasing.
// --write-baseline FILE records the current findings as the new baseline
// (canonical bytes; writing then re-reading round-trips byte-identically).
//
// Exit status is 0 when the tree is clean (after the baseline, if any),
// 1 when any unsuppressed violation is found, 2 on usage/IO errors.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "hunterlint/hunterlint.h"
#include "hunterlint/report.h"
#include "hunterlint/rules.h"

namespace {

bool ReadFileOrDie(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string format = "text";
  std::string baseline_path;
  std::string write_baseline_path;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "hunterlint: --root needs a directory\n");
        return 2;
      }
      root = argv[++i];
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "json") {
        std::fprintf(stderr,
                     "hunterlint: --format must be text or json (got '%s')\n",
                     format.c_str());
        return 2;
      }
    } else if (arg == "--baseline") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "hunterlint: --baseline needs a file\n");
        return 2;
      }
      baseline_path = argv[++i];
    } else if (arg == "--write-baseline") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "hunterlint: --write-baseline needs a file\n");
        return 2;
      }
      write_baseline_path = argv[++i];
    } else if (arg == "--list-rules") {
      for (const std::string& rule : hunter::lint::AllRuleNames()) {
        std::printf("%-28s %s\n", rule.c_str(),
                    hunter::lint::RuleDescription(rule).c_str());
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: hunterlint [--root DIR] [--list-rules] "
          "[--format=text|json]\n"
          "                  [--baseline FILE] [--write-baseline FILE] "
          "[PATH...]\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "hunterlint: unknown option '%s'\n", arg.c_str());
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) paths = {"src", "tests", "bench", "examples"};

  const std::vector<std::string> files =
      hunter::lint::CollectFiles(root, paths);
  std::vector<hunter::lint::Violation> violations =
      hunter::lint::LintTree(root, files);

  if (!write_baseline_path.empty()) {
    const std::string bytes = hunter::lint::BaselineToJson(
        hunter::lint::BaselineFromViolations(violations));
    std::ofstream outf(write_baseline_path, std::ios::binary);
    outf << bytes;
    if (!outf) {
      std::fprintf(stderr, "hunterlint: cannot write baseline '%s'\n",
                   write_baseline_path.c_str());
      return 2;
    }
    std::printf("hunterlint: wrote baseline of %zu violation(s) to %s\n",
                violations.size(), write_baseline_path.c_str());
    return 0;
  }

  if (!baseline_path.empty()) {
    std::string bytes;
    if (!ReadFileOrDie(baseline_path, &bytes)) {
      std::fprintf(stderr, "hunterlint: cannot read baseline '%s'\n",
                   baseline_path.c_str());
      return 2;
    }
    std::vector<hunter::lint::BaselineEntry> baseline;
    std::string error;
    if (!hunter::lint::ParseBaselineJson(bytes, &baseline, &error)) {
      std::fprintf(stderr, "hunterlint: malformed baseline '%s': %s\n",
                   baseline_path.c_str(), error.c_str());
      return 2;
    }
    violations = hunter::lint::ApplyBaseline(violations, baseline);
  }

  if (format == "json") {
    const std::string json = hunter::lint::ViolationsToJson(violations);
    std::fwrite(json.data(), 1, json.size(), stdout);
    return violations.empty() ? 0 : 1;
  }

  for (const hunter::lint::Violation& v : violations) {
    std::fprintf(stderr, "%s\n", hunter::lint::FormatViolation(v).c_str());
  }
  if (violations.empty()) {
    std::printf("hunterlint: %zu files clean\n", files.size());
    return 0;
  }
  std::fprintf(stderr, "hunterlint: %zu violation(s) in %zu files\n",
               violations.size(), files.size());
  return 1;
}
