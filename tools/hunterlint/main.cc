// hunterlint — static checks for HUNTER's determinism invariants.
//
// Usage:
//   hunterlint [--root DIR] [--list-rules] [PATH...]
//
// PATHs (files or directories, default: src tests bench examples) are
// resolved against --root (default: current directory) and scanned for
// .h/.hpp/.cc/.cpp/.cxx files. Exit status is 0 when the tree is clean,
// 1 when any unsuppressed violation is found, 2 on usage errors.

#include <cstdio>
#include <string>
#include <vector>

#include "hunterlint/hunterlint.h"
#include "hunterlint/rules.h"

int main(int argc, char** argv) {
  std::string root = ".";
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "hunterlint: --root needs a directory\n");
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--list-rules") {
      for (const std::string& rule : hunter::lint::AllRuleNames()) {
        std::printf("%-28s %s\n", rule.c_str(),
                    hunter::lint::RuleDescription(rule).c_str());
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: hunterlint [--root DIR] [--list-rules] [PATH...]\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "hunterlint: unknown option '%s'\n", arg.c_str());
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) paths = {"src", "tests", "bench", "examples"};

  const std::vector<std::string> files =
      hunter::lint::CollectFiles(root, paths);
  const std::vector<hunter::lint::Violation> violations =
      hunter::lint::LintTree(root, files);

  for (const hunter::lint::Violation& v : violations) {
    std::fprintf(stderr, "%s\n", hunter::lint::FormatViolation(v).c_str());
  }
  if (violations.empty()) {
    std::printf("hunterlint: %zu files clean\n", files.size());
    return 0;
  }
  std::fprintf(stderr, "hunterlint: %zu violation(s) in %zu files\n",
               violations.size(), files.size());
  return 1;
}
