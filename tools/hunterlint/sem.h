// hunterlint semantic layer (DESIGN.md §12).
//
// The token-level rules in rules.cc can ban a name anywhere it appears, but
// HUNTER's concurrency and hot-path invariants are *scoped* properties: a
// field access is only wrong when the declared mutex is not held, an
// allocation is only wrong inside a loop of a function declared hot. This
// header grows the linter a small semantic model on top of the lexer:
//
//   - a preprocessor-aware parser pass producing a per-file symbol table
//     (classes with their fields, function definitions with body token
//     ranges, out-of-line methods resolved to their class),
//   - a lock-acquisition model covering std::lock_guard, std::scoped_lock,
//     std::unique_lock (incl. defer_lock and manual lock()/unlock()) and
//     direct mutex .lock()/.unlock() calls, with block-scoped release,
//   - a lightweight call graph: calls to methods annotated
//     `// hunterlint: requires(mu_)` are checked at every call site.
//
// The annotation vocabulary, matched inside comments like the suppression
// syntax:
//
//   // hunterlint: guarded_by(mu_)   on a field declaration: every access
//                                    must happen with mu_ held
//   // hunterlint: requires(mu_)     on a function: callers must hold mu_;
//                                    the body is checked assuming it is held
//   // hunterlint: hot               on a function: no new/push_back/resize/
//                                    vector construction inside its loops
//
// An annotation attaches to the declaration on its line; a comment alone on
// its line attaches to the declaration starting on the next line (same
// convention as `allow`). Three rule families consume the model:
//
//   guarded-by            annotated fields accessed without their mutex
//   no-alloc-in-hot-loop  allocations inside loops of hot functions
//   deadlock-order        cycles in the cross-file lock acquisition order
//
// Because `guarded_by` annotations live on field declarations in headers
// while the accesses live in .cc files, the driver merges every file's
// symbol table into a ProjectModel first and then runs the rules per file
// against the merged model (see hunterlint.cc).

#ifndef HUNTER_TOOLS_HUNTERLINT_SEM_H_
#define HUNTER_TOOLS_HUNTERLINT_SEM_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "hunterlint/lexer.h"
#include "hunterlint/rules.h"

namespace hunter::lint {

struct FieldInfo {
  std::string name;
  int line = 0;
  std::string guarded_by;  // empty when unannotated
};

struct ClassInfo {
  std::string name;  // unqualified
  std::vector<FieldInfo> fields;
};

constexpr size_t kNoBody = static_cast<size_t>(-1);

struct FunctionInfo {
  std::string class_name;  // enclosing class or out-of-line qualifier; ""
                           // for free functions
  std::string name;
  int line = 0;            // line of the declarator name
  bool is_ctor_or_dtor = false;
  bool hot = false;
  std::vector<std::string> requires_locks;  // as written (unqualified)
  // Token indices into FileModel::code of the body's '{' and '}'.
  // body_begin == kNoBody for declarations without a body.
  size_t body_begin = kNoBody;
  size_t body_end = kNoBody;
};

// Per-file symbol table. `code` is the lexed token stream with preprocessor
// directive lines removed, so the parser and the rule scans never trip over
// `#ifndef FOO_H_` / `#define` tokens.
struct FileModel {
  std::vector<Token> code;
  std::vector<ClassInfo> classes;
  std::vector<FunctionInfo> functions;
};

FileModel BuildFileModel(const LexedFile& lex);

// Cross-file knowledge merged from every FileModel: which fields are
// guarded by which mutex (keyed by class), and which functions carry
// requires/hot annotations (keyed by class then name, "" for free
// functions). std::map keeps every downstream iteration deterministic.
struct ProjectModel {
  struct FnAnno {
    bool hot = false;
    std::vector<std::string> requires_locks;  // sorted, deduped
  };
  std::map<std::string, std::map<std::string, std::string>> guarded_fields;
  std::map<std::string, std::map<std::string, FnAnno>> fn_annos;
};

void MergeFileModel(const FileModel& model, ProjectModel* project);

// One observed "acquired B while holding A" event. Lock names are
// class-qualified ("ThreadPool::mutex_") so the same member name in two
// classes stays two graph nodes across files.
struct LockEdge {
  std::string held;
  std::string acquired;
  std::string path;
  int line = 0;
};

// Runs guarded-by and no-alloc-in-hot-loop over one file against the merged
// project model, appending violations to `out` and every lock-order edge
// observed in this file to `edges`.
void RunSemanticRules(const FileCtx& ctx, const FileModel& model,
                      const ProjectModel& project,
                      std::vector<Violation>* out,
                      std::vector<LockEdge>* edges);

// deadlock-order: finds strongly connected components in the acquisition
// graph and reports every edge inside a cycle at the site it was observed.
void CheckDeadlockOrder(const std::vector<LockEdge>& edges,
                        std::vector<Violation>* out);

}  // namespace hunter::lint

#endif  // HUNTER_TOOLS_HUNTERLINT_SEM_H_
