// Figure 7: component selection and effect of PCA on TPC-C. (a) Cumulative
// proportion of variance vs number of components over the 63 collected
// metrics (paper: CDF reaches 91% at 13 components, so v = 13); (b) the
// reward (Equation 1) of samples projected on the top-2 components —
// high- and low-reward samples separate cleanly in that plane.

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "common/table_printer.h"
#include "linalg/matrix.h"
#include "ml/pca.h"

int main() {
  using namespace hunter;
  std::printf("## Figure 7: PCA component selection on MySQL/TPC-C\n\n");

  // Collect 140 GA samples (the Sample Factory's pool).
  auto scenario = bench::MySqlTpcc();
  auto controller = bench::MakeController(scenario, 1, 42);
  core::HunterOptions options;
  auto tuner = bench::MakeHunter(scenario, options, 7);
  std::vector<controller::Sample> pool;
  for (int i = 0; i < 140; ++i) {
    const auto samples = controller->EvaluateBatch(tuner->Propose(1));
    tuner->Observe(samples);
    if (!samples[0].boot_failed) pool.push_back(samples[0]);
  }

  std::vector<std::vector<double>> rows;
  for (const auto& sample : pool) rows.push_back(sample.metrics);
  ml::Pca pca;
  pca.Fit(linalg::Matrix(rows));

  std::printf("(a) cumulative proportion of variance (paper: 91%% at 13):\n");
  const auto cdf = pca.CumulativeVarianceRatio();
  common::TablePrinter cdf_table({"components", "variance CDF"});
  for (size_t k : {1u, 2u, 4u, 6u, 8u, 10u, 12u, 13u, 16u, 20u, 30u, 63u}) {
    if (k <= cdf.size()) {
      cdf_table.AddRow({std::to_string(k),
                        common::FormatDouble(cdf[k - 1] * 100.0, 1) + "%"});
    }
  }
  cdf_table.Print(std::cout);
  std::printf("components needed for >=90%% variance: %zu (paper: 13)\n\n",
              pca.ComponentsForVariance(0.90));

  std::printf(
      "(b) reward separation on the top-2 components (mean |component| by "
      "reward tercile):\n");
  std::vector<std::pair<double, std::vector<double>>> projected;
  for (const auto& sample : pool) {
    projected.push_back({sample.fitness, pca.Transform(sample.metrics, 2)});
  }
  std::sort(projected.begin(), projected.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  common::TablePrinter sep_table(
      {"reward tercile", "mean reward", "mean comp-1", "mean comp-2"});
  const size_t third = projected.size() / 3;
  const char* labels[] = {"low", "mid", "high"};
  for (int t = 0; t < 3; ++t) {
    const size_t begin = t * third;
    const size_t end = t == 2 ? projected.size() : (t + 1) * third;
    double reward = 0, c1 = 0, c2 = 0;
    for (size_t i = begin; i < end; ++i) {
      reward += projected[i].first;
      c1 += projected[i].second[0];
      c2 += projected[i].second[1];
    }
    const double n = static_cast<double>(end - begin);
    sep_table.AddRow({labels[t], common::FormatDouble(reward / n, 3),
                      common::FormatDouble(c1 / n, 2),
                      common::FormatDouble(c2 / n, 2)});
  }
  sep_table.Print(std::cout);
  std::printf(
      "\ndistinct component means across terciles indicate the compressed "
      "state still distinguishes rewards, shortening DRL learning (§3.2.1).\n");
  return 0;
}
