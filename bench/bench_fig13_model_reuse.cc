// Figure 13: the online model reuse scheme (§4). A HUNTER model trained on
// Sysbench RW with one read/write ratio is fine-tuned on the other ratio
// (HUNTER-MR) and compared against HUNTER from scratch and HUNTER-5
// (5 clones). The two workloads share key knobs and compressed-state
// dimension, which is what the matching module checks.
// Paper: HUNTER-MR's peak is slightly below HUNTER's, but it reaches its
// optimum 8-10 hours sooner, approaching HUNTER-5's efficiency.

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "common/table_printer.h"

namespace hunter::bench {
namespace {

core::HunterModel TrainModel(const Scenario& scenario, uint64_t seed) {
  auto controller = MakeController(scenario, 1, 42);
  auto tuner = MakeHunter(scenario, core::HunterOptions{}, seed);
  tuners::HarnessOptions harness;
  harness.budget_hours = 40.0;
  tuners::RunTuning(tuner.get(), controller.get(), harness);
  auto model = tuner->ExportModel();
  return model.value();
}

void RunDirection(const Scenario& source, const Scenario& target,
                  core::ModelRegistry* registry, uint64_t seed) {
  std::printf("\n### %s <- %s\n\n", target.name.c_str(), source.name.c_str());
  tuners::HarnessOptions harness;
  harness.budget_hours = 40.0;
  std::vector<tuners::TuningResult> results;

  {  // HUNTER from scratch.
    auto controller = MakeController(target, 1, 42);
    auto tuner = MakeHunter(target, core::HunterOptions{}, seed);
    results.push_back(
        tuners::RunTuning(tuner.get(), controller.get(), harness));
  }
  {  // HUNTER-5.
    auto controller = MakeController(target, 5, 42);
    auto tuner = MakeHunter(target, core::HunterOptions{}, seed);
    tuner->set_name("HUNTER-5");
    results.push_back(
        tuners::RunTuning(tuner.get(), controller.get(), harness));
  }
  {  // HUNTER-MR: match by signature, import, fine-tune.
    const core::HunterModel trained = TrainModel(source, seed);
    registry->Store(trained);
    auto matched = registry->Match(trained.signature);
    auto controller = MakeController(target, 1, 42);
    auto tuner = MakeHunter(target, core::HunterOptions{}, seed + 1);
    tuner->set_name("HUNTER-MR");
    if (matched.has_value()) {
      tuner->ImportModel(*matched);  // skip Sample Factory + Optimizer
    }
    results.push_back(
        tuners::RunTuning(tuner.get(), controller.get(), harness));
  }

  PrintThroughputCurves(results, {2, 5, 8, 12, 16, 20, 25, 30, 40}, 1.0,
                        "txn/s");
  std::printf("\n");
  PrintSummaries(results, 1.0, "txn/s");
}

}  // namespace
}  // namespace hunter::bench

int main() {
  using namespace hunter;
  std::printf("## Figure 13: online model reuse on MySQL Sysbench RW\n");
  core::ModelRegistry registry;
  auto rw41 = bench::MySqlSysbenchRwRatio(4.0);
  auto rw11 = bench::MySqlSysbenchRwRatio(1.0);
  bench::RunDirection(rw11, rw41, &registry, 7);  // 4:1 <- 1:1
  bench::RunDirection(rw41, rw11, &registry, 7);  // 1:1 <- 4:1
  std::printf(
      "\npaper shape: HUNTER-MR peaks slightly below HUNTER but reaches its "
      "optimum ~8-10 h sooner, approaching HUNTER-5's efficiency.\n");
  return 0;
}
