// Shared plumbing for the experiment harnesses: scenario definitions
// (DBMS flavor x instance x workload), tuner factories by paper name, and
// table/curve printing so each bench binary emits rows directly comparable
// to the paper's tables and figures.

#ifndef HUNTER_BENCH_BENCH_COMMON_H_
#define HUNTER_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "cdb/cdb_instance.h"
#include "cdb/knob_catalog.h"
#include "controller/controller.h"
#include "hunter/hunter.h"
#include "tuners/tuner.h"

namespace hunter::bench {

struct Scenario {
  std::string name;
  cdb::KnobCatalog catalog;
  cdb::InstanceType instance;
  cdb::EngineTuning engine;
  cdb::WorkloadProfile workload;
};

Scenario MySqlTpcc();
Scenario MySqlSysbenchWo();
Scenario MySqlSysbenchRw();
Scenario MySqlSysbenchRo();
Scenario MySqlSysbenchRwRatio(double reads_per_write);
Scenario PostgresTpcc();
Scenario MySqlProduction(bool morning);

std::unique_ptr<controller::Controller> MakeController(const Scenario& scenario,
                                                       int clones,
                                                       uint64_t seed);

// Tuner by the paper's name: "HUNTER", "BestConfig", "OtterTune",
// "CDBTune", "QTune", "ResTune", "Random", "GA" (Sample-Factory-only
// HUNTER, used by the motivation figures).
std::unique_ptr<tuners::Tuner> MakeTuner(const std::string& name,
                                         const Scenario& scenario,
                                         uint64_t seed);

// HUNTER with explicit ablation flags (Tables 3-5) or custom options.
std::unique_ptr<core::HunterTuner> MakeHunter(const Scenario& scenario,
                                              const core::HunterOptions& options,
                                              uint64_t seed);

// Best throughput achieved on `curve` at or before `hours`.
double CurveAt(const std::vector<tuners::CurvePoint>& curve, double hours);
double CurveLatencyAt(const std::vector<tuners::CurvePoint>& curve,
                      double hours);

// Prints one table: rows = checkpoints (hours), columns = one per result,
// values = best throughput so far scaled by `unit_scale` (e.g., 60 for
// txn/min).
void PrintThroughputCurves(const std::vector<tuners::TuningResult>& results,
                           const std::vector<double>& checkpoints,
                           double unit_scale, const std::string& unit);
void PrintLatencyCurves(const std::vector<tuners::TuningResult>& results,
                        const std::vector<double>& checkpoints);

// One-line summary per result (best T, best L, recommendation time).
void PrintSummaries(const std::vector<tuners::TuningResult>& results,
                    double unit_scale, const std::string& unit);

}  // namespace hunter::bench

#endif  // HUNTER_BENCH_BENCH_COMMON_H_
