// Fault-tolerance harness for the clone fleet: runs HUNTER on a 20-clone
// fleet twice per seed with identical seeds — once fault-free, once with a
// seeded schedule injecting >=10% transient deploy failures, crashes,
// stragglers, and one permanent clone death — and compares final best
// fitness and the sim-clock cost of absorbing the faults.
//
// The fitness acceptance is on the *mean* gap across seeds, not any single
// run: a single seeded trajectory pair has a gap spread of several percent
// either way (legitimate numeric changes anywhere in the engine or the
// tuner reshuffle both trajectories), so a one-seed gate measures luck,
// not resilience. The resilience layer passes when every faulty run
// completes without hangs with retry/replacement costs on the clock, every
// schedule actually fires, and the mean fitness degradation under faults
// stays below 5%.

#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/table_printer.h"

namespace hunter::bench {
namespace {

struct RunOutcome {
  tuners::TuningResult result;
  double sim_hours = 0.0;
  size_t stress_tests = 0;
  controller::FaultStats stats;
};

RunOutcome Run(const Scenario& scenario, uint64_t seed, bool faulty) {
  auto instance = std::make_unique<cdb::CdbInstance>(
      &scenario.catalog, scenario.instance, scenario.engine, seed);
  controller::ControllerOptions options;
  options.num_clones = 20;
  options.seed = seed;
  options.concurrent_actors = false;  // deterministic bench runs
  if (faulty) {
    options.faults.seed = 2026;
    options.faults.transient_deploy_failure_rate = 0.10;
    options.faults.crash_rate = 0.02;
    options.faults.straggler_rate = 0.04;
    options.faults.straggler_slowdown = 6.0;
    options.faults.permanent_deaths = {{7, 5}};
    options.straggler_timeout_seconds =
        3.0 * controller::Actor::kExecutionSeconds;
  }
  auto controller = std::make_unique<controller::Controller>(
      std::move(instance), scenario.workload, options);

  auto tuner = MakeTuner("HUNTER", scenario, seed + 100);
  tuners::HarnessOptions harness;
  harness.budget_hours = 6.0;
  RunOutcome outcome;
  outcome.result = tuners::RunTuning(tuner.get(), controller.get(), harness);
  outcome.sim_hours = controller->clock().hours();
  outcome.stress_tests = controller->total_stress_tests();
  outcome.stats = controller->fault_stats();
  return outcome;
}

}  // namespace
}  // namespace hunter::bench

int main() {
  using namespace hunter;
  std::printf(
      "## Fault tolerance: HUNTER on a 20-clone fleet, fault-free vs a "
      "seeded fault schedule (3 seeds)\n\n");
  const bench::Scenario scenario = bench::MySqlTpcc();
  const std::vector<uint64_t> seeds = {42, 43, 44};

  common::TablePrinter table(
      {"run", "best fitness", "best T (txn/min)", "sim hours", "attempts",
       "retries", "transient", "crashes", "straggle t/o", "reclones",
       "failed"});
  const auto row = [&](const std::string& name,
                       const bench::RunOutcome& run) {
    table.AddRow({name,
                  common::FormatDouble(run.result.best_sample.fitness, 3),
                  common::FormatDouble(run.result.best_throughput * 60.0, 0),
                  common::FormatDouble(run.sim_hours, 1),
                  std::to_string(run.stress_tests),
                  std::to_string(run.stats.retries),
                  std::to_string(run.stats.transient_deploy_failures),
                  std::to_string(run.stats.crashes),
                  std::to_string(run.stats.straggler_timeouts),
                  std::to_string(run.stats.reclones),
                  std::to_string(run.stats.failed_samples)});
  };

  double gap_sum = 0.0;
  bool all_faults_injected = true;
  bool all_clocks_charged = true;
  for (const uint64_t seed : seeds) {
    const bench::RunOutcome clean = bench::Run(scenario, seed, false);
    const bench::RunOutcome faulty = bench::Run(scenario, seed, true);
    row("clean/" + std::to_string(seed), clean);
    row("faulty/" + std::to_string(seed), faulty);
    const double clean_fitness = clean.result.best_sample.fitness;
    const double faulty_fitness = faulty.result.best_sample.fitness;
    // Signed: negative = the faulty run tuned worse than its clean twin.
    gap_sum += (faulty_fitness - clean_fitness) / std::abs(clean_fitness);
    all_faults_injected = all_faults_injected &&
                          faulty.stats.transient_deploy_failures > 0 &&
                          faulty.stats.permanent_deaths == 1;
    // Both runs are budget-bounded near 6 h, so total hours can round to a
    // tie; what absorbing faults must cost is simulated time *per attempt*
    // (retries, backoff, recovery, reclone all land on the clock).
    all_clocks_charged =
        all_clocks_charged &&
        faulty.sim_hours / static_cast<double>(faulty.stress_tests) >
            clean.sim_hours / static_cast<double>(clean.stress_tests);
  }
  table.Print(std::cout);

  const double mean_gap = gap_sum / static_cast<double>(seeds.size());
  std::printf(
      "\nmean fitness gap under faults: %+.2f%% across %zu seeds "
      "(acceptance: mean degradation <= 5%%)\n",
      100.0 * mean_gap, seeds.size());
  std::printf("fault schedule exercised on every seed: %s; "
              "retry/replacement time charged on every seed "
              "(per-attempt sim cost rose): %s\n",
              all_faults_injected ? "yes" : "NO",
              all_clocks_charged ? "yes" : "NO");
  const bool pass =
      mean_gap >= -0.05 && all_faults_injected && all_clocks_charged;
  std::printf("verdict: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
