// Fault-tolerance harness for the clone fleet: runs HUNTER on a 20-clone
// fleet twice with identical seeds — once fault-free, once with a seeded
// schedule injecting >=10% transient deploy failures, crashes, stragglers,
// and one permanent clone death — and compares final best fitness and the
// sim-clock cost of absorbing the faults. The resilience layer passes when
// the faulty run completes without hangs, its best fitness lands within 5%
// of the fault-free run, and retry/replacement costs show up on the clock.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "common/table_printer.h"

namespace hunter::bench {
namespace {

struct RunOutcome {
  tuners::TuningResult result;
  double sim_hours = 0.0;
  size_t stress_tests = 0;
  controller::FaultStats stats;
};

RunOutcome Run(const Scenario& scenario, bool faulty) {
  auto instance = std::make_unique<cdb::CdbInstance>(
      &scenario.catalog, scenario.instance, scenario.engine, 42);
  controller::ControllerOptions options;
  options.num_clones = 20;
  options.seed = 42;
  options.concurrent_actors = false;  // deterministic bench runs
  if (faulty) {
    options.faults.seed = 2026;
    options.faults.transient_deploy_failure_rate = 0.10;
    options.faults.crash_rate = 0.02;
    options.faults.straggler_rate = 0.04;
    options.faults.straggler_slowdown = 6.0;
    options.faults.permanent_deaths = {{7, 5}};
    options.straggler_timeout_seconds =
        3.0 * controller::Actor::kExecutionSeconds;
  }
  auto controller = std::make_unique<controller::Controller>(
      std::move(instance), scenario.workload, options);

  auto tuner = MakeTuner("HUNTER", scenario, 7);
  tuners::HarnessOptions harness;
  harness.budget_hours = 6.0;
  RunOutcome outcome;
  outcome.result = tuners::RunTuning(tuner.get(), controller.get(), harness);
  outcome.sim_hours = controller->clock().hours();
  outcome.stress_tests = controller->total_stress_tests();
  outcome.stats = controller->fault_stats();
  return outcome;
}

}  // namespace
}  // namespace hunter::bench

int main() {
  using namespace hunter;
  std::printf(
      "## Fault tolerance: HUNTER on a 20-clone fleet, fault-free vs a "
      "seeded fault schedule\n\n");
  const bench::Scenario scenario = bench::MySqlTpcc();
  const bench::RunOutcome clean = bench::Run(scenario, false);
  const bench::RunOutcome faulty = bench::Run(scenario, true);

  common::TablePrinter table(
      {"run", "best fitness", "best T (txn/min)", "sim hours", "attempts",
       "retries", "transient", "crashes", "straggle t/o", "reclones",
       "failed"});
  const auto row = [&](const char* name, const bench::RunOutcome& run) {
    table.AddRow({name,
                  common::FormatDouble(run.result.best_sample.fitness, 3),
                  common::FormatDouble(run.result.best_throughput * 60.0, 0),
                  common::FormatDouble(run.sim_hours, 1),
                  std::to_string(run.stress_tests),
                  std::to_string(run.stats.retries),
                  std::to_string(run.stats.transient_deploy_failures),
                  std::to_string(run.stats.crashes),
                  std::to_string(run.stats.straggler_timeouts),
                  std::to_string(run.stats.reclones),
                  std::to_string(run.stats.failed_samples)});
  };
  row("fault-free", clean);
  row("faulty", faulty);
  table.Print(std::cout);

  const double clean_fitness = clean.result.best_sample.fitness;
  const double faulty_fitness = faulty.result.best_sample.fitness;
  const double gap =
      std::abs(faulty_fitness - clean_fitness) / std::abs(clean_fitness);
  const bool faults_injected = faulty.stats.transient_deploy_failures > 0 &&
                               faulty.stats.permanent_deaths == 1;
  const bool clock_charged = faulty.sim_hours > clean.sim_hours;
  std::printf(
      "\nbest-fitness gap vs fault-free: %.2f%% (acceptance: <= 5%%)\n",
      100.0 * gap);
  std::printf("fault schedule exercised: %s; retry/replacement time charged: "
              "%s (%.2f h vs %.2f h)\n",
              faults_injected ? "yes" : "NO", clock_charged ? "yes" : "NO",
              faulty.sim_hours, clean.sim_hours);
  const bool pass = gap <= 0.05 && faults_injected && clock_charged;
  std::printf("verdict: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
