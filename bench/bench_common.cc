#include "bench/bench_common.h"

#include <cstdio>
#include <iostream>

#include "common/table_printer.h"
#include "tuners/bestconfig.h"
#include "tuners/cdbtune.h"
#include "tuners/ottertune.h"
#include "tuners/qtune.h"
#include "tuners/random_tuner.h"
#include "tuners/restune.h"
#include "workload/workloads.h"

namespace hunter::bench {

namespace {

Scenario MySqlScenario(std::string name, cdb::WorkloadProfile workload) {
  Scenario scenario;
  scenario.name = std::move(name);
  scenario.catalog = cdb::MySqlCatalog();
  scenario.instance = cdb::MySqlEvaluationInstance();
  scenario.engine = cdb::MySqlEngineTuning();
  scenario.workload = std::move(workload);
  return scenario;
}

}  // namespace

Scenario MySqlTpcc() { return MySqlScenario("MySQL/TPC-C", workload::Tpcc()); }

Scenario MySqlSysbenchWo() {
  return MySqlScenario("MySQL/Sysbench-WO", workload::SysbenchWriteOnly());
}

Scenario MySqlSysbenchRw() {
  return MySqlScenario("MySQL/Sysbench-RW", workload::SysbenchReadWrite());
}

Scenario MySqlSysbenchRo() {
  return MySqlScenario("MySQL/Sysbench-RO", workload::SysbenchReadOnly());
}

Scenario MySqlSysbenchRwRatio(double reads_per_write) {
  return MySqlScenario("MySQL/Sysbench-RW(" + std::to_string(static_cast<int>(
                           reads_per_write)) + ":1)",
                       workload::SysbenchReadWriteRatio(reads_per_write));
}

Scenario PostgresTpcc() {
  Scenario scenario;
  scenario.name = "PostgreSQL/TPC-C";
  scenario.catalog = cdb::PostgresCatalog();
  scenario.instance = cdb::PostgresEvaluationInstance();
  scenario.engine = cdb::PostgresEngineTuning();
  scenario.workload = workload::Tpcc();
  return scenario;
}

Scenario MySqlProduction(bool morning) {
  Scenario scenario =
      MySqlScenario(morning ? "MySQL/Production-9am" : "MySQL/Production-9pm",
                    workload::Production(morning));
  scenario.instance = cdb::ProductionEvaluationInstance();
  return scenario;
}

std::unique_ptr<controller::Controller> MakeController(const Scenario& scenario,
                                                       int clones,
                                                       uint64_t seed) {
  auto instance = std::make_unique<cdb::CdbInstance>(
      &scenario.catalog, scenario.instance, scenario.engine, seed);
  controller::ControllerOptions options;
  options.num_clones = clones;
  options.seed = seed;
  options.concurrent_actors = false;  // deterministic bench runs
  return std::make_unique<controller::Controller>(std::move(instance),
                                                  scenario.workload, options);
}

std::unique_ptr<tuners::Tuner> MakeTuner(const std::string& name,
                                         const Scenario& scenario,
                                         uint64_t seed) {
  const size_t dim = scenario.catalog.size();
  if (name == "HUNTER") {
    return MakeHunter(scenario, core::HunterOptions{}, seed);
  }
  if (name == "GA") {
    // Sample Factory only: GA with an unbounded budget (motivation figures).
    core::HunterOptions options;
    options.ga.target_samples = 1u << 20;
    return MakeHunter(scenario, options, seed);
  }
  if (name == "BestConfig") {
    return std::make_unique<tuners::BestConfigTuner>(
        dim, tuners::BestConfigOptions{}, seed);
  }
  if (name == "OtterTune") {
    return std::make_unique<tuners::OtterTuneTuner>(
        dim, tuners::OtterTuneOptions{}, seed);
  }
  if (name == "CDBTune") {
    return std::make_unique<tuners::CdbTuneTuner>(
        cdb::kNumMetrics, dim, std::vector<double>{},
        tuners::CdbTuneOptions{}, seed);
  }
  if (name == "QTune") {
    return std::make_unique<tuners::QTuneTuner>(
        cdb::kNumMetrics, dim, scenario.workload, tuners::CdbTuneOptions{},
        seed);
  }
  if (name == "ResTune") {
    auto tuner = std::make_unique<tuners::ResTuneTuner>(
        dim, tuners::OtterTuneOptions{}, seed);
    tuner->SetWorkloadFeatures(tuners::WorkloadFeatures(scenario.workload));
    return tuner;
  }
  return std::make_unique<tuners::RandomTuner>(dim, seed);
}

std::unique_ptr<core::HunterTuner> MakeHunter(const Scenario& scenario,
                                              const core::HunterOptions& options,
                                              uint64_t seed) {
  return std::make_unique<core::HunterTuner>(&scenario.catalog, core::Rules(),
                                             options, seed);
}

double CurveAt(const std::vector<tuners::CurvePoint>& curve, double hours) {
  double value = 0.0;
  for (const auto& point : curve) {
    if (point.hours <= hours) value = point.best_throughput;
  }
  return value;
}

double CurveLatencyAt(const std::vector<tuners::CurvePoint>& curve,
                      double hours) {
  double value = 0.0;
  for (const auto& point : curve) {
    if (point.hours <= hours) value = point.best_latency;
  }
  return value;
}

void PrintThroughputCurves(const std::vector<tuners::TuningResult>& results,
                           const std::vector<double>& checkpoints,
                           double unit_scale, const std::string& unit) {
  std::vector<std::string> headers = {"hours"};
  for (const auto& result : results) headers.push_back(result.tuner_name);
  common::TablePrinter table(headers);
  for (double hours : checkpoints) {
    std::vector<std::string> row = {common::FormatDouble(hours, 1)};
    for (const auto& result : results) {
      row.push_back(
          common::FormatDouble(CurveAt(result.curve, hours) * unit_scale, 0));
    }
    table.AddRow(std::move(row));
  }
  std::printf("best throughput so far (%s):\n", unit.c_str());
  table.Print(std::cout);
}

void PrintLatencyCurves(const std::vector<tuners::TuningResult>& results,
                        const std::vector<double>& checkpoints) {
  std::vector<std::string> headers = {"hours"};
  for (const auto& result : results) headers.push_back(result.tuner_name);
  common::TablePrinter table(headers);
  for (double hours : checkpoints) {
    std::vector<std::string> row = {common::FormatDouble(hours, 1)};
    for (const auto& result : results) {
      const double latency = CurveLatencyAt(result.curve, hours);
      row.push_back(latency > 0 ? common::FormatDouble(latency, 1) : "-");
    }
    table.AddRow(std::move(row));
  }
  std::printf("best 95%%-tail latency so far (ms):\n");
  table.Print(std::cout);
}

void PrintSummaries(const std::vector<tuners::TuningResult>& results,
                    double unit_scale, const std::string& unit) {
  common::TablePrinter table(
      {"method", "best T (" + unit + ")", "best L (ms)", "rec. time (h)",
       "steps"});
  for (const auto& result : results) {
    table.AddRow({result.tuner_name,
                  common::FormatDouble(result.best_throughput * unit_scale, 0),
                  common::FormatDouble(result.best_latency, 1),
                  common::FormatDouble(result.recommendation_hours, 1),
                  std::to_string(result.steps)});
  }
  table.Print(std::cout);
}

}  // namespace hunter::bench
