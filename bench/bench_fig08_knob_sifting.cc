// Figure 8: performance changes with the number of tuned knobs on TPC-C,
// for Random-Forest importance rankings trained on n = 70 / 140 / 280
// samples. Paper: improvement flattens at ~20 knobs ("tuning top-20 knobs
// brings similar profits compared with tuning all knobs"), and rankings
// from 140 samples match those from 280 while 70 is noticeably worse.

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "common/table_printer.h"
#include "hunter/search_space_optimizer.h"

namespace hunter::bench {
namespace {

// Trains the RF ranking on `n` GA samples, then tunes only the top-k knobs
// with the Recommender for a short fixed budget; returns best throughput.
double TuneTopK(const Scenario& scenario, size_t n, size_t top_k,
                uint64_t seed, double* latency) {
  auto controller = MakeController(scenario, 1, 42);
  core::HunterOptions options;
  options.ga.target_samples = n;
  options.optimizer.top_knobs = top_k;
  auto tuner = MakeHunter(scenario, options, seed);
  tuners::HarnessOptions harness;
  harness.budget_hours = static_cast<double>(n) * 165.0 / 3600.0 + 8.0;
  const auto result = tuners::RunTuning(tuner.get(), controller.get(), harness);
  if (latency != nullptr) *latency = result.best_latency;
  return result.best_throughput;
}

}  // namespace
}  // namespace hunter::bench

int main() {
  using namespace hunter;
  std::printf("## Figure 8: performance vs number of tuned knobs (TPC-C)\n");
  std::printf(
      "paper: gains flatten at ~20 knobs; n=140 and n=280 rankings perform "
      "alike, n=70 is worse\n\n");
  auto scenario = bench::MySqlTpcc();
  common::TablePrinter table({"top-k knobs", "n=70 (txn/min)",
                              "n=140 (txn/min)", "n=280 (txn/min)",
                              "n=140 latency (ms)"});
  for (size_t k : {5u, 10u, 20u, 40u, 65u}) {
    double latency_140 = 0.0;
    const double t70 = bench::TuneTopK(scenario, 70, k, 7, nullptr);
    const double t140 = bench::TuneTopK(scenario, 140, k, 7, &latency_140);
    const double t280 = bench::TuneTopK(scenario, 280, k, 7, nullptr);
    table.AddRow({std::to_string(k), common::FormatDouble(t70 * 60, 0),
                  common::FormatDouble(t140 * 60, 0),
                  common::FormatDouble(t280 * 60, 0),
                  common::FormatDouble(latency_140, 1)});
  }
  table.Print(std::cout);
  std::printf(
      "\nHUNTER keeps the top-20 knobs ranked from at least 140 samples "
      "(§3.2.2).\n");
  return 0;
}
