// Table 6: ablation of DRL warm-up modules — HER (hindsight experience
// replay over random samples) vs GA+ (GA + PCA + RF + FES, i.e. full
// HUNTER) on MySQL and PostgreSQL with TPC-C.
// Paper: MySQL GA+ 68942/34.0/17h vs HER 67351/36.0/39h; PostgreSQL
// GA+ 77816/86.5/19h vs HER 74532/95.3/31h — GA+ wins on both.

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "common/table_printer.h"
#include "ml/her.h"
#include "tuners/cdbtune.h"

namespace hunter::bench {
namespace {

// DDPG warm-started by HER-augmented random samples: collect the same
// number of warm-up samples as HUNTER's Sample Factory (140, but randomly
// generated), HER-relabel them into the replay buffer, then run DDPG.
class HerWarmupTuner : public tuners::CdbTuneTuner {
 public:
  HerWarmupTuner(size_t num_metrics, size_t num_knobs, uint64_t seed)
      : tuners::CdbTuneTuner(num_metrics, num_knobs, {}, Options(), seed,
                             "DDPG+HER"),
        rng_(seed) {}

  void Observe(const std::vector<controller::Sample>& samples) override {
    tuners::CdbTuneTuner::Observe(samples);
    observed_ += samples.size();
    if (!augmented_ && observed_ >= 140) {
      // One-time HER augmentation of the warm-up experience.
      std::vector<ml::Transition> transitions(
          agent().buffer().transitions().begin(),
          agent().buffer().transitions().end());
      const auto relabeled = ml::HerAugment(transitions, ml::HerOptions{},
                                            &rng_);
      for (size_t i = transitions.size(); i < relabeled.size(); ++i) {
        agent().AddTransition(relabeled[i]);
      }
      for (int i = 0; i < 200; ++i) agent().TrainStep();
      augmented_ = true;
    }
  }

 private:
  static tuners::CdbTuneOptions Options() {
    tuners::CdbTuneOptions options;
    options.random_warmup = 140;  // same warm-up budget as the GA factory
    return options;
  }
  common::Rng rng_;
  size_t observed_ = 0;
  bool augmented_ = false;
};

void RunDatabase(const Scenario& scenario, double unit_scale,
                 const char* unit) {
  std::printf("\n### %s\n\n", scenario.name.c_str());
  common::TablePrinter table({"warm-up", std::string("T (") + unit + ")",
                              "L (ms)", "rec. time (h)"});
  tuners::HarnessOptions harness;
  harness.budget_hours = 72.0;
  {
    auto controller = MakeController(scenario, 1, 42);
    auto tuner = MakeTuner("HUNTER", scenario, 7);
    static_cast<core::HunterTuner*>(tuner.get())->set_name("DDPG+GA+");
    const auto result =
        tuners::RunTuning(tuner.get(), controller.get(), harness);
    table.AddRow({"GA+ (GA+PCA+RF+FES)",
                  common::FormatDouble(result.best_throughput * unit_scale, 0),
                  common::FormatDouble(result.best_latency, 1),
                  common::FormatDouble(result.recommendation_hours, 1)});
  }
  {
    auto controller = MakeController(scenario, 1, 42);
    HerWarmupTuner tuner(cdb::kNumMetrics, scenario.catalog.size(), 7);
    const auto result = tuners::RunTuning(&tuner, controller.get(), harness);
    table.AddRow({"HER",
                  common::FormatDouble(result.best_throughput * unit_scale, 0),
                  common::FormatDouble(result.best_latency, 1),
                  common::FormatDouble(result.recommendation_hours, 1)});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace hunter::bench

int main() {
  std::printf("## Table 6: DRL warm-up module ablation (GA+ vs HER)\n");
  {
    auto scenario = hunter::bench::MySqlTpcc();
    hunter::bench::RunDatabase(scenario, 60.0, "txn/min");
  }
  {
    auto scenario = hunter::bench::PostgresTpcc();
    hunter::bench::RunDatabase(scenario, 60.0, "txn/min");
  }
  std::printf(
      "\npaper: GA+ recommends better configurations in less time on both "
      "databases (Table 6), so GA+ is the rational DRL warm-up.\n");
  return 0;
}
