// Figure 14 + Table 7: varying instance types. Models are trained for a
// long budget on instance type F (8 cores / 32 GB) with TPC-C, then each
// tuner gets 5 fine-tuning steps on every type A-H.
// Paper: HUNTER always leads; throughput grows with resources; CDB_A is
// overloaded and barely tunable; CDB_F ~ CDB_G (extra RAM beyond the
// working set is idle); CDB_H gains again from extra cores but leaves CPU
// underutilized.

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "common/table_printer.h"

namespace hunter::bench {
namespace {

// Trains on F, then fine-tunes 5 steps per instance type; returns the best
// throughput per type.
std::vector<double> TrainAndFineTune(const std::string& method,
                                     uint64_t seed) {
  Scenario train = MySqlTpcc();  // evaluation instance == type F
  auto controller = MakeController(train, 1, 42);
  auto tuner = MakeTuner(method, train, seed);
  tuners::HarnessOptions harness;
  harness.budget_hours = 100.0;  // paper: 100 h of training on CDB_F
  tuners::RunTuning(tuner.get(), controller.get(), harness);

  std::vector<double> best_per_type;
  for (const cdb::InstanceType& type : cdb::Table7InstanceTypes()) {
    Scenario target = MySqlTpcc();
    target.instance = type;
    auto target_controller = MakeController(target, 1, 42);
    double best = 0.0;
    // 5 fine-tuning steps with the trained model (the tuner keeps learning).
    for (int step = 0; step < 5; ++step) {
      const auto samples =
          target_controller->EvaluateBatch(tuner->Propose(1));
      tuner->Observe(samples);
      for (const auto& sample : samples) {
        best = std::max(best, sample.throughput_tps);
      }
    }
    best_per_type.push_back(best);
  }
  return best_per_type;
}

}  // namespace
}  // namespace hunter::bench

int main() {
  using namespace hunter;
  std::printf(
      "## Figure 14: model reuse across instance types (TPC-C, trained on "
      "CDB_F)\n\n");
  std::printf("Table 7 instance types:\n");
  common::TablePrinter types({"type", "CPU (cores)", "RAM (GB)"});
  for (const auto& type : cdb::Table7InstanceTypes()) {
    types.AddRow({type.name, std::to_string(type.cpu_cores),
                  common::FormatDouble(type.ram_gb, 0)});
  }
  types.Print(std::cout);
  std::printf("\n");

  const std::vector<std::string> methods = {"BestConfig", "CDBTune", "HUNTER"};
  std::vector<std::vector<double>> results;
  for (const auto& method : methods) {
    results.push_back(bench::TrainAndFineTune(method, 7));
  }

  common::TablePrinter table(
      {"instance", methods[0], methods[1], methods[2]});
  const auto all_types = cdb::Table7InstanceTypes();
  for (size_t i = 0; i < all_types.size(); ++i) {
    std::vector<std::string> row = {"CDB_" + all_types[i].name};
    for (const auto& per_type : results) {
      row.push_back(common::FormatDouble(per_type[i] * 60.0, 0));
    }
    table.AddRow(std::move(row));
  }
  std::printf("best throughput after 5 fine-tune steps (txn/min):\n");
  table.Print(std::cout);
  std::printf(
      "\npaper shape: monotone growth A -> F; F ~ G (idle extra RAM); H "
      "gains again from 16 cores; HUNTER leads at every type.\n");
  return 0;
}
