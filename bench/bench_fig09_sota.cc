// Figure 9: comparison with state-of-the-art tuning systems on MySQL/TPC-C,
// MySQL/Sysbench-WO, and PostgreSQL/TPC-C — best throughput and best
// 95%-tail-latency vs tuning time for BestConfig, OtterTune, CDBTune, QTune,
// ResTune, HUNTER and HUNTER-20 under a 70-hour budget.
//
// Paper reference points: on MySQL/TPC-C, HUNTER-20 reaches the optimum in
// 2.1 h (22.8x faster than CDBTune) and HUNTER in 17 h (2.8x); Sysbench-WO:
// 2.3 h / 18.7x and 23 h / 1.9x; PostgreSQL/TPC-C: 1.9 h / 22.1x and
// 19 h / 2.5x. Other methods' optima do not exceed HUNTER's peak.

#include <cstdio>

#include "bench/bench_common.h"

namespace hunter::bench {
namespace {

void RunScenario(const Scenario& scenario, double unit_scale,
                 const char* unit) {
  std::printf("\n### %s (70 h budget)\n\n", scenario.name.c_str());
  const std::vector<std::string> methods = {
      "BestConfig", "OtterTune", "CDBTune", "QTune", "ResTune", "HUNTER"};
  tuners::HarnessOptions harness;
  harness.budget_hours = 70.0;

  std::vector<tuners::TuningResult> results;
  double hunter_best = 0.0;
  for (const std::string& method : methods) {
    auto controller = MakeController(scenario, 1, 42);
    auto tuner = MakeTuner(method, scenario, 7);
    results.push_back(tuners::RunTuning(tuner.get(), controller.get(), harness));
    if (method == "HUNTER") hunter_best = results.back().best_throughput;
  }

  // HUNTER-20: 20 cloned CDBs; terminates once it exceeds 98% of HUNTER's
  // best (the paper's HUNTER-* termination rule).
  {
    auto controller = MakeController(scenario, 20, 42);
    auto tuner = MakeTuner("HUNTER", scenario, 7);
    static_cast<core::HunterTuner*>(tuner.get())->set_name("HUNTER-20");
    tuners::HarnessOptions parallel = harness;
    parallel.target_throughput = 0.98 * hunter_best;
    parallel.budget_hours = 12.0;  // paper: ~2.1 h; cap the parallel run
    results.push_back(
        tuners::RunTuning(tuner.get(), controller.get(), parallel));
  }

  PrintThroughputCurves(results, {1, 2, 6, 12, 17, 24, 36, 48, 60, 70},
                        unit_scale, unit);
  std::printf("\n");
  PrintLatencyCurves(results, {1, 2, 6, 12, 17, 24, 36, 48, 60, 70});
  std::printf("\n");
  PrintSummaries(results, unit_scale, unit);

  const auto& hunter = results[5];
  const auto& hunter20 = results[6];
  const auto& cdbtune = results[2];
  std::printf(
      "\nspeedups vs CDBTune (rec. time): HUNTER %.1fx, HUNTER-20 %.1fx "
      "(paper: 2.8x / 22.8x on MySQL TPC-C)\n",
      cdbtune.recommendation_hours /
          std::max(0.01, hunter.recommendation_hours),
      cdbtune.recommendation_hours /
          std::max(0.01, hunter20.recommendation_hours));
}

}  // namespace
}  // namespace hunter::bench

int main() {
  std::printf("## Figure 9: comparison with state-of-the-art tuning systems\n");
  {
    auto scenario = hunter::bench::MySqlTpcc();
    hunter::bench::RunScenario(scenario, 60.0, "txn/min");
  }
  {
    auto scenario = hunter::bench::MySqlSysbenchWo();
    hunter::bench::RunScenario(scenario, 1.0, "txn/s");
  }
  {
    auto scenario = hunter::bench::PostgresTpcc();
    hunter::bench::RunScenario(scenario, 60.0, "txn/min");
  }
  std::printf(
      "\nPaper reference (Table 2 workloads): HUNTER improves performance "
      "and reduces recommendation time by 55-65%% (1 clone) and 94-95%% "
      "(20 clones) vs the best baseline.\n");
  return 0;
}
