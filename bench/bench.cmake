# Bench targets are defined via include() rather than add_subdirectory() so
# that build/bench/ contains only the benchmark executables (the harness is
# driven with `for b in build/bench/*; do $b; done`).

add_library(bench_common OBJECT ${PROJECT_SOURCE_DIR}/bench/bench_common.cc)
target_link_libraries(bench_common PUBLIC hunter_core hunter_workload)
target_include_directories(bench_common PUBLIC ${PROJECT_SOURCE_DIR})

function(hunter_add_bench name)
  add_executable(${name} ${PROJECT_SOURCE_DIR}/bench/${name}.cc)
  target_link_libraries(${name} PRIVATE bench_common hunter_core hunter_workload)
  target_include_directories(${name} PRIVATE ${PROJECT_SOURCE_DIR})
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

hunter_add_bench(bench_fig01_motivation)
hunter_add_bench(bench_tab01_step_breakdown)
hunter_add_bench(bench_fig04_ga_motivation)
hunter_add_bench(bench_fig05_sample_quality)
hunter_add_bench(bench_fig06_ga_sample_count)
hunter_add_bench(bench_fig07_pca)
hunter_add_bench(bench_fig08_knob_sifting)
hunter_add_bench(bench_fig09_sota)
hunter_add_bench(bench_fig10_drift)
hunter_add_bench(bench_tab03_ablation_mysql_tpcc)
hunter_add_bench(bench_tab04_ablation_mysql_sbrw)
hunter_add_bench(bench_tab05_ablation_pg_tpcc)
hunter_add_bench(bench_tab06_warmup)
hunter_add_bench(bench_fig11_cost)
hunter_add_bench(bench_fig12_parallelization)
hunter_add_bench(bench_fig13_model_reuse)
hunter_add_bench(bench_fig14_instance_types)
hunter_add_bench(bench_fault_tolerance)

# Microbenchmarks use google-benchmark (unlike the experiment harnesses,
# which print paper tables directly).
add_executable(bench_micro_components ${PROJECT_SOURCE_DIR}/bench/bench_micro_components.cc)
target_link_libraries(bench_micro_components PRIVATE
  benchmark::benchmark hunter_core hunter_workload)
set_target_properties(bench_micro_components PROPERTIES
  RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)

# Perf-regression harness for the batched ML hot paths: times seed vs.
# rewritten implementations, asserts equivalence, writes BENCH_hotpaths.json.
# The smoke configuration runs on every `ctest -L perf` (and plain ctest)
# invocation so the equivalence asserts gate each build.
hunter_add_bench(bench_micro_hotpaths)
add_test(NAME perf_hotpaths_smoke
  COMMAND bench_micro_hotpaths --smoke --out BENCH_hotpaths_smoke.json)
set_tests_properties(perf_hotpaths_smoke PROPERTIES
  LABELS "perf"
  WORKING_DIRECTORY ${CMAKE_BINARY_DIR})
