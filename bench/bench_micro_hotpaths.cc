// Perf-regression harness for the batched ML hot paths (ROADMAP: "make a
// hot path measurably faster") and the engine-evaluation fast path. For
// each hot path it times the seed implementation (replicated below as the
// `ref` baselines, in tests/cdb/seed_engine_ref.h for the engine, or
// reached via DdpgOptions::batched_training = false) against the rewrite,
// asserts the two agree (ML paths to 1e-9; the engine fast path — flat
// intrusive LRU, cached Zipf samplers, bit-exact early-exit fixed point —
// bit for bit at tolerance 0.0), and writes machine-readable
// BENCH_hotpaths.json. The *_simd benchmarks additionally time the
// dispatched vector kernels (linalg/simd/) against the scalar tier of the
// same entry points and gate bit identity at tolerance 0.0; every record
// names the ISA tier it dispatched at ("scalar" / "avx2+fma").
//
// Usage: bench_micro_hotpaths [--smoke | --mode=smoke|full] [--out PATH]
//   --smoke  tiny sizes, few iterations — run by ctest under the `perf`
//            label so every build exercises the equivalence asserts.
//            (`--mode=smoke` is an alias; `--mode=full` the default.)
//   --out    JSON output path (default BENCH_hotpaths.json).
//
// Parallel benchmarks record both std::thread::hardware_concurrency() and
// the actual pool width used; HUNTER_BENCH_THREADS overrides the width.
//
// In full mode every timing is the minimum of several repetitions (see
// g_time_reps) so the reported speedups survive scheduler noise.
//
// Exit code is non-zero if any equivalence check fails, so a speedup can
// never silently change results.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <limits>
#include <locale>
#include <numeric>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cdb/buffer_pool.h"
#include "cdb/cdb_instance.h"
#include "cdb/instance_type.h"
#include "cdb/knob_catalog.h"
#include "cdb/simulated_engine.h"
#include "cdb/workload_profile.h"
#include "common/cpu.h"
#include "common/rng.h"
#include "common/text.h"
#include "common/thread_pool.h"
#include "linalg/matrix.h"
#include "linalg/simd/simd.h"
#include "ml/cart.h"
#include "ml/ddpg.h"
#include "ml/gaussian_process.h"
#include "ml/mlp.h"
#include "ml/pca.h"
#include "ml/random_forest.h"
#include "ml/replay_buffer.h"
#include "tests/cdb/seed_engine_ref.h"
#include "workload/workloads.h"

namespace {

using hunter::common::Rng;
using hunter::common::ThreadPool;
using hunter::linalg::Matrix;

// ---------------------------------------------------------------------------
// Timing + reporting plumbing.

// Repetition count for TimeMs (set from main; 1 in smoke mode). Each
// measurement repeats the whole iters-loop this many times and reports the
// minimum mean: on a shared box single runs swing by tens of percent from
// scheduler noise, and the minimum is the usual robust estimator of the
// undisturbed cost. It is applied to baseline and optimized runs alike.
int g_time_reps = 1;

// Pool width for parallel benchmarks (HUNTER_BENCH_THREADS overrides; set
// from main). Recorded per benchmark in the JSON next to
// hardware_concurrency so a reported speedup names the width it ran at.
size_t g_pool_threads = 4;

double TimeMs(const std::function<void()>& fn, int iters) {
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < g_time_reps; ++rep) {
    // hunterlint: allow(no-wall-clock) perf harness measures real host time
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) fn();
    // hunterlint: allow(no-wall-clock) perf harness measures real host time
    const auto stop = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count() /
        static_cast<double>(iters);
    best = std::min(best, ms);
  }
  return best;
}

struct BenchResult {
  std::string name;
  std::string config;
  double baseline_ms = 0.0;
  double optimized_ms = 0.0;
  size_t pool_threads = 0;  // 0 = single-threaded benchmark
  // ISA tier the optimized run dispatched at ("scalar" / "avx2+fma"),
  // captured at record time so a report from a non-AVX2 host (or a
  // HUNTER_FORCE_SCALAR run) is self-describing.
  std::string simd_tier;
  double Speedup() const {
    return optimized_ms > 0.0 ? baseline_ms / optimized_ms : 0.0;
  }
};

struct EquivResult {
  std::string name;
  double max_abs_diff = 0.0;
  double tolerance = 0.0;
  bool Pass() const { return max_abs_diff <= tolerance; }
};

std::vector<BenchResult> g_benches;
std::vector<EquivResult> g_equivs;

void RecordBench(const std::string& name, const std::string& config,
                 double baseline_ms, double optimized_ms,
                 size_t pool_threads = 0) {
  g_benches.push_back({name, config, baseline_ms, optimized_ms, pool_threads,
                       hunter::linalg::simd::ActiveTierName()});
  std::printf("%-18s baseline %9.3f ms  optimized %9.3f ms  speedup %5.2fx\n",
              name.c_str(), baseline_ms, optimized_ms,
              g_benches.back().Speedup());
}

void RecordEquiv(const std::string& name, double max_abs_diff,
                 double tolerance) {
  g_equivs.push_back({name, max_abs_diff, tolerance});
  std::printf("%-34s max |diff| %.3e  (tol %.0e)  %s\n", name.c_str(),
              max_abs_diff, tolerance,
              g_equivs.back().Pass() ? "OK" : "FAIL");
}

double MaxAbsDiff(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return std::numeric_limits<double>::infinity();
  double max_diff = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(a[i] - b[i]));
  }
  return max_diff;
}

// ---------------------------------------------------------------------------
// Seed (pre-rewrite) reference implementations, kept verbatim as baselines.

namespace ref {

// The seed Matrix::Multiply: naive j-k inner loops with the sparse-skip
// branch, allocating a fresh result per call.
Matrix NaiveMultiply(const Matrix& lhs, const Matrix& rhs) {
  Matrix result(lhs.rows(), rhs.cols());
  for (size_t r = 0; r < lhs.rows(); ++r) {
    for (size_t k = 0; k < lhs.cols(); ++k) {
      const double a = lhs.At(r, k);
      if (a == 0.0) continue;
      for (size_t c = 0; c < rhs.cols(); ++c) {
        result.At(r, c) += a * rhs.At(k, c);
      }
    }
  }
  return result;
}

// Naive covariance (triple loop over the centered data, as the seed did),
// with the post-PR sample (N-1) denominator so only the implementation —
// not the statistic — differs from linalg::Covariance.
Matrix NaiveCovariance(const Matrix& data) {
  const size_t n = data.rows();
  const size_t d = data.cols();
  Matrix cov(d, d);
  if (n < 2) return cov;
  const std::vector<double> means = hunter::linalg::ColumnMeans(data);
  for (size_t a = 0; a < d; ++a) {
    for (size_t b = 0; b < d; ++b) {
      double sum = 0.0;
      for (size_t r = 0; r < n; ++r) {
        sum += (data.At(r, a) - means[a]) * (data.At(r, b) - means[b]);
      }
      cov.At(a, b) = sum / static_cast<double>(n - 1);
    }
  }
  return cov;
}

struct SplitStats {
  double sum = 0.0, sum_sq = 0.0;
  size_t count = 0;
  void Add(double y) { sum += y; sum_sq += y * y; ++count; }
  void Remove(double y) { sum -= y; sum_sq -= y * y; --count; }
  double SumSquaredError() const {
    return count == 0 ? 0.0 : sum_sq - sum * sum / static_cast<double>(count);
  }
  double Mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

// The seed CartTree: per-(node, feature) pair sorts over an index
// partition, fit on a materialized bootstrap copy of the design matrix.
class CartTree {
 public:
  void Fit(const Matrix& x, const std::vector<double>& y,
           const hunter::ml::CartOptions& options, Rng* rng) {
    nodes_.clear();
    importance_.assign(x.cols(), 0.0);
    std::vector<size_t> indices(x.rows());
    std::iota(indices.begin(), indices.end(), 0);
    if (!indices.empty()) {
      BuildNode(x, y, indices, 0, indices.size(), 0, options, rng);
    }
  }

  double Predict(const std::vector<double>& row) const {
    if (nodes_.empty()) return 0.0;
    int node = 0;
    while (!nodes_[static_cast<size_t>(node)].is_leaf) {
      const Node& n = nodes_[static_cast<size_t>(node)];
      node = row[n.feature] <= n.threshold ? n.left : n.right;
    }
    return nodes_[static_cast<size_t>(node)].value;
  }

  const std::vector<double>& feature_importance() const { return importance_; }

 private:
  struct Node {
    bool is_leaf = true;
    double value = 0.0;
    size_t feature = 0;
    double threshold = 0.0;
    int left = -1;
    int right = -1;
  };

  int BuildNode(const Matrix& x, const std::vector<double>& y,
                std::vector<size_t>& indices, size_t begin, size_t end,
                int depth, const hunter::ml::CartOptions& options, Rng* rng) {
    const size_t count = end - begin;
    SplitStats node_stats;
    for (size_t i = begin; i < end; ++i) node_stats.Add(y[indices[i]]);

    const int node_id = static_cast<int>(nodes_.size());
    nodes_.emplace_back();
    nodes_[node_id].value = node_stats.Mean();

    const double node_sse = node_stats.SumSquaredError();
    if (depth >= options.max_depth || count < 2 * options.min_samples_leaf ||
        node_sse < 1e-12) {
      return node_id;
    }

    std::vector<size_t> features(x.cols());
    std::iota(features.begin(), features.end(), 0);
    const size_t feature_budget =
        options.max_features == 0 ? x.cols()
                                  : std::min(options.max_features, x.cols());
    if (feature_budget < x.cols()) rng->Shuffle(&features);
    features.resize(feature_budget);

    double best_gain = 1e-12;
    size_t best_feature = 0;
    double best_threshold = 0.0;

    std::vector<std::pair<double, double>> column(count);
    for (size_t feature : features) {
      for (size_t i = 0; i < count; ++i) {
        const size_t row = indices[begin + i];
        column[i] = {x.At(row, feature), y[row]};
      }
      std::sort(column.begin(), column.end());

      SplitStats left;
      SplitStats right = node_stats;
      for (size_t i = 0; i + 1 < count; ++i) {
        left.Add(column[i].second);
        right.Remove(column[i].second);
        if (column[i].first == column[i + 1].first) continue;
        if (left.count < options.min_samples_leaf ||
            right.count < options.min_samples_leaf) {
          continue;
        }
        const double gain =
            node_sse - left.SumSquaredError() - right.SumSquaredError();
        if (gain > best_gain) {
          best_gain = gain;
          best_feature = feature;
          best_threshold = 0.5 * (column[i].first + column[i + 1].first);
        }
      }
    }

    if (best_gain <= 1e-12) return node_id;

    const auto middle = std::stable_partition(
        indices.begin() + static_cast<long>(begin),
        indices.begin() + static_cast<long>(end), [&](size_t row) {
          return x.At(row, best_feature) <= best_threshold;
        });
    const size_t split = static_cast<size_t>(middle - indices.begin());
    if (split == begin || split == end) return node_id;

    importance_[best_feature] += best_gain;

    nodes_[node_id].is_leaf = false;
    nodes_[node_id].feature = best_feature;
    nodes_[node_id].threshold = best_threshold;
    nodes_[node_id].left =
        BuildNode(x, y, indices, begin, split, depth + 1, options, rng);
    nodes_[node_id].right =
        BuildNode(x, y, indices, split, end, depth + 1, options, rng);
    return node_id;
  }

  std::vector<Node> nodes_;
  std::vector<double> importance_;
};

// The seed RandomForest::Fit loop (bootstrap copy per tree, serial), with
// per-tree forked RNGs so it fits each tree on exactly the same bootstrap
// sample and feature draws as the rewritten RandomForest.
class RandomForest {
 public:
  void Fit(const Matrix& x, const std::vector<double>& y,
           const hunter::ml::RandomForestOptions& options, Rng* rng) {
    trees_.assign(options.num_trees, CartTree());
    importance_.assign(x.cols(), 0.0);

    hunter::ml::CartOptions tree_options = options.tree;
    if (tree_options.max_features == 0) {
      tree_options.max_features = static_cast<size_t>(std::ceil(
          options.feature_fraction * static_cast<double>(x.cols())));
      tree_options.max_features =
          std::max<size_t>(1, tree_options.max_features);
    }

    const size_t n = x.rows();
    std::vector<size_t> bootstrap(n);
    Matrix sample_x(n, x.cols());
    std::vector<double> sample_y(n);
    for (auto& tree : trees_) {
      Rng tree_rng = rng->Fork();
      for (size_t i = 0; i < n; ++i) {
        bootstrap[i] = static_cast<size_t>(
            tree_rng.UniformInt(0, static_cast<int64_t>(n) - 1));
      }
      for (size_t i = 0; i < n; ++i) {
        for (size_t c = 0; c < x.cols(); ++c) {
          sample_x.At(i, c) = x.At(bootstrap[i], c);
        }
        sample_y[i] = y[bootstrap[i]];
      }
      tree.Fit(sample_x, sample_y, tree_options, &tree_rng);
      const std::vector<double>& tree_importance = tree.feature_importance();
      for (size_t c = 0; c < importance_.size(); ++c) {
        importance_[c] += tree_importance[c];
      }
    }

    double total = 0.0;
    for (double v : importance_) total += v;
    if (total > 0.0) {
      for (double& v : importance_) v /= total;
    }
  }

  double Predict(const std::vector<double>& row) const {
    if (trees_.empty()) return 0.0;
    double sum = 0.0;
    for (const auto& tree : trees_) sum += tree.Predict(row);
    return sum / static_cast<double>(trees_.size());
  }

  const std::vector<double>& feature_importance() const { return importance_; }

 private:
  std::vector<CartTree> trees_;
  std::vector<double> importance_;
};

// The seed GaussianProcess, kept verbatim: allocating per-row kernel loops,
// a full O(n^3) refactorization on every Fit, and the two-pass
// (forward + back substitution) variance in Predict. The incremental GP must
// match its predictions to 1e-9 and its EI scores bit-for-near-bit.
class SeedGp {
 public:
  explicit SeedGp(hunter::ml::GpOptions options = {}) : options_(options) {}

  bool Fit(const Matrix& x, const std::vector<double>& y) {
    train_x_ = x;
    train_y_ = y;
    const size_t n = x.rows();
    y_mean_ = 0.0;
    for (double v : y) y_mean_ += v;
    if (n > 0) y_mean_ /= static_cast<double>(n);

    Matrix k(n, n);
    for (size_t i = 0; i < n; ++i) {
      const std::vector<double> xi = x.Row(i);
      for (size_t j = i; j < n; ++j) {
        const double value = Kernel(xi, x.Row(j));
        k.At(i, j) = value;
        k.At(j, i) = value;
      }
      k.At(i, i) += options_.noise_variance;
    }
    if (!hunter::linalg::Cholesky(k, &chol_)) {
      fitted_ = false;
      return false;
    }
    std::vector<double> centered(n);
    for (size_t i = 0; i < n; ++i) centered[i] = y[i] - y_mean_;
    alpha_ = hunter::linalg::CholeskySolve(chol_, centered);
    fitted_ = true;
    return true;
  }

  hunter::ml::GaussianProcess::Prediction Predict(
      const std::vector<double>& x) const {
    hunter::ml::GaussianProcess::Prediction prediction;
    if (!fitted_) {
      prediction.variance = options_.signal_variance;
      return prediction;
    }
    const size_t n = train_x_.rows();
    std::vector<double> k_star(n);
    for (size_t i = 0; i < n; ++i) k_star[i] = Kernel(x, train_x_.Row(i));

    double mean = y_mean_;
    for (size_t i = 0; i < n; ++i) mean += k_star[i] * alpha_[i];
    prediction.mean = mean;

    const std::vector<double> v = hunter::linalg::CholeskySolve(chol_, k_star);
    double reduction = 0.0;
    for (size_t i = 0; i < n; ++i) reduction += k_star[i] * v[i];
    prediction.variance = std::max(0.0, Kernel(x, x) - reduction);
    return prediction;
  }

  double ExpectedImprovement(const std::vector<double>& x,
                             double best_so_far) const {
    const auto p = Predict(x);
    const double sigma = std::sqrt(p.variance);
    if (sigma < 1e-12) return std::max(0.0, p.mean - best_so_far);
    const double z = (p.mean - best_so_far) / sigma;
    return (p.mean - best_so_far) * NormalCdf(z) + sigma * NormalPdf(z);
  }

 private:
  static double NormalPdf(double z) {
    return std::exp(-0.5 * z * z) / std::sqrt(2.0 * 3.14159265358979323846);
  }
  static double NormalCdf(double z) {
    return 0.5 * std::erfc(-z / 1.41421356237309504880);
  }

  double Kernel(const std::vector<double>& a,
                const std::vector<double>& b) const {
    double sq = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
      const double d = a[i] - b[i];
      sq += d * d;
    }
    const double ls = options_.length_scale * options_.length_scale;
    return options_.signal_variance * std::exp(-0.5 * sq / ls);
  }

  hunter::ml::GpOptions options_;
  bool fitted_ = false;
  Matrix train_x_;
  std::vector<double> train_y_;
  double y_mean_ = 0.0;
  Matrix chol_;
  std::vector<double> alpha_;
};

// The seed Ddpg::TrainStep, reconstructed from public pieces (Mlp's
// per-sample Forward/Backward, ReplayBuffer::SampleBatch): every minibatch
// deep-copies its transitions out of the buffer and every sample pays the
// Concat/TanhToUnit vector temporaries. Construction forks the RNG exactly
// like ml::Ddpg, so from the same seed it draws identical minibatches and
// its per-step losses must match the rewritten paths bit for bit (asserted
// in BenchDdpg) — evidence the baseline runs the same computation rather
// than a strawman.
class SeedDdpg {
 public:
  SeedDdpg(const hunter::ml::DdpgOptions& options, Rng* rng)
      : options_(options),
        rng_(rng->Fork()),
        buffer_(options.replay_capacity) {
    Rng init_rng = rng_.Fork();
    actor_ = hunter::ml::Mlp(
        BuildSizes(options.state_dim, options.actor_hidden,
                   options.action_dim),
        hunter::ml::Activation::kReLU, hunter::ml::Activation::kTanh,
        &init_rng);
    critic_ = hunter::ml::Mlp(
        BuildSizes(options.state_dim + options.action_dim,
                   options.critic_hidden, 1),
        hunter::ml::Activation::kReLU, hunter::ml::Activation::kLinear,
        &init_rng);
    target_actor_ = actor_;
    target_critic_ = critic_;
  }

  void AddTransition(hunter::ml::Transition transition) {
    buffer_.Add(std::move(transition));
  }

  double TrainStep() {
    if (buffer_.empty()) return 0.0;
    const std::vector<hunter::ml::Transition> batch =
        buffer_.SampleBatch(options_.batch_size, &rng_);

    double total_loss = 0.0;
    critic_.ZeroGradients();
    for (const hunter::ml::Transition& t : batch) {
      double target = t.reward;
      if (!t.terminal) {
        const std::vector<double> next_action =
            TanhToUnit(target_actor_.Predict(t.next_state));
        const std::vector<double> next_q =
            target_critic_.Predict(Concat(t.next_state, next_action));
        target += options_.gamma * next_q[0];
      }
      const std::vector<double> q =
          critic_.Forward(Concat(t.state, t.action));
      const double error = q[0] - target;
      total_loss += error * error;
      critic_.Backward({2.0 * error});
    }
    critic_.AdamStep(options_.critic_lr, batch.size());

    actor_.ZeroGradients();
    for (const hunter::ml::Transition& t : batch) {
      const std::vector<double> tanh_action = actor_.Forward(t.state);
      const std::vector<double> unit_action = TanhToUnit(tanh_action);
      critic_.Forward(Concat(t.state, unit_action));
      const std::vector<double> grad_input = critic_.Backward({-1.0});
      std::vector<double> grad_action(options_.action_dim);
      for (size_t i = 0; i < options_.action_dim; ++i) {
        grad_action[i] = 0.5 * grad_input[options_.state_dim + i];
        if (options_.grad_clip > 0.0) {
          grad_action[i] = std::clamp(grad_action[i], -options_.grad_clip,
                                      options_.grad_clip);
        }
      }
      actor_.Backward(grad_action);
    }
    critic_.ZeroGradients();
    actor_.AdamStep(options_.actor_lr, batch.size());

    target_actor_.SoftUpdateFrom(actor_, options_.tau);
    target_critic_.SoftUpdateFrom(critic_, options_.tau);

    return total_loss / static_cast<double>(batch.size());
  }

 private:
  static std::vector<size_t> BuildSizes(size_t in,
                                        const std::vector<size_t>& hidden,
                                        size_t out) {
    std::vector<size_t> sizes;
    sizes.push_back(in);
    sizes.insert(sizes.end(), hidden.begin(), hidden.end());
    sizes.push_back(out);
    return sizes;
  }

  static std::vector<double> Concat(const std::vector<double>& a,
                                    const std::vector<double>& b) {
    std::vector<double> merged;
    merged.reserve(a.size() + b.size());
    merged.insert(merged.end(), a.begin(), a.end());
    merged.insert(merged.end(), b.begin(), b.end());
    return merged;
  }

  static std::vector<double> TanhToUnit(const std::vector<double>& tanh_out) {
    std::vector<double> unit(tanh_out.size());
    for (size_t i = 0; i < tanh_out.size(); ++i) {
      unit[i] = std::clamp(0.5 * (tanh_out[i] + 1.0), 0.0, 1.0);
    }
    return unit;
  }

  hunter::ml::DdpgOptions options_;
  Rng rng_;
  hunter::ml::Mlp actor_;
  hunter::ml::Mlp critic_;
  hunter::ml::Mlp target_actor_;
  hunter::ml::Mlp target_critic_;
  hunter::ml::ReplayBuffer buffer_;
};

}  // namespace ref

// ---------------------------------------------------------------------------
// Shared test-data helpers.

Matrix RandomMatrix(size_t rows, size_t cols, Rng* rng) {
  Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) m.At(r, c) = rng->Uniform(-1.0, 1.0);
  }
  return m;
}

// Knob-style regression data: continuous features, smooth-ish response.
void MakeRegressionData(size_t n, size_t d, Rng* rng, Matrix* x,
                        std::vector<double>* y) {
  *x = Matrix(n, d);
  y->resize(n);
  for (size_t r = 0; r < n; ++r) {
    double label = 0.0;
    for (size_t c = 0; c < d; ++c) {
      const double v = rng->Uniform(0.0, 1.0);
      x->At(r, c) = v;
      if (c < 5) label += (5.0 - static_cast<double>(c)) * v;
    }
    (*y)[r] = label + rng->Gaussian(0.0, 0.1);
  }
}

// ---------------------------------------------------------------------------
// Benchmarks.

void BenchGemm(bool smoke) {
  const size_t n = smoke ? 16 : 128;
  const int iters = smoke ? 3 : 20;
  Rng rng(0xBEEF01);
  const Matrix a = RandomMatrix(n, n, &rng);
  const Matrix b = RandomMatrix(n, n, &rng);

  const Matrix naive = ref::NaiveMultiply(a, b);
  Matrix out;
  a.MultiplyInto(b, &out);
  double max_diff = 0.0;
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) {
      max_diff = std::max(max_diff, std::abs(naive.At(r, c) - out.At(r, c)));
    }
  }
  RecordEquiv("gemm_into_vs_naive", max_diff, 1e-12);

  double sink = 0.0;
  const double baseline_ms = TimeMs(
      [&] {
        const Matrix c = ref::NaiveMultiply(a, b);
        sink += c.At(0, 0);
      },
      iters);
  const double optimized_ms = TimeMs(
      [&] {
        a.MultiplyInto(b, &out);
        sink += out.At(0, 0);
      },
      iters);
  if (sink == 42.0) std::printf("unlikely\n");  // keep the sink alive
  RecordBench("gemm", std::to_string(n) + "x" + std::to_string(n) + "x" +
                          std::to_string(n),
              baseline_ms, optimized_ms);
}

void BenchMlpStep(bool smoke) {
  const size_t batch = 32;
  const std::vector<size_t> sizes = {63, 64, 64, 20};
  const int iters = smoke ? 3 : 200;
  Rng rng(0xBEEF02);
  hunter::ml::Mlp scalar_net(sizes, hunter::ml::Activation::kReLU,
                             hunter::ml::Activation::kTanh, &rng);
  hunter::ml::Mlp batch_net = scalar_net;

  const Matrix input = RandomMatrix(batch, sizes.front(), &rng);
  const Matrix grad = RandomMatrix(batch, sizes.back(), &rng);

  // Equivalence: one forward+backward over the batch, both paths, starting
  // from identical parameters; compare outputs and accumulated gradients
  // (read back through AdamStep-updated parameters).
  std::vector<std::vector<double>> scalar_out(batch);
  scalar_net.ZeroGradients();
  for (size_t r = 0; r < batch; ++r) {
    scalar_out[r] = scalar_net.Forward(input.Row(r));
    scalar_net.Backward(grad.Row(r));
  }
  scalar_net.AdamStep(1e-3, batch);

  Matrix batch_out;
  batch_net.ZeroGradients();
  batch_net.ForwardBatch(input, &batch_out);
  batch_net.BackwardBatch(grad, nullptr);
  batch_net.AdamStep(1e-3, batch);

  double out_diff = 0.0;
  for (size_t r = 0; r < batch; ++r) {
    for (size_t c = 0; c < sizes.back(); ++c) {
      out_diff =
          std::max(out_diff, std::abs(scalar_out[r][c] - batch_out.At(r, c)));
    }
  }
  RecordEquiv("mlp_forward_batch_vs_scalar", out_diff, 1e-9);
  RecordEquiv("mlp_params_after_step",
              MaxAbsDiff(scalar_net.SaveParameters(),
                         batch_net.SaveParameters()),
              1e-9);

  const double baseline_ms = TimeMs(
      [&] {
        for (size_t r = 0; r < batch; ++r) {
          scalar_net.Forward(input.Row(r));
          scalar_net.Backward(grad.Row(r));
        }
        scalar_net.AdamStep(1e-3, batch);
      },
      iters);
  const double optimized_ms = TimeMs(
      [&] {
        batch_net.ForwardBatch(input, &batch_out);
        batch_net.BackwardBatch(grad, nullptr);
        batch_net.AdamStep(1e-3, batch);
      },
      iters);
  RecordBench("mlp_step", "net {63,64,64,20} batch 32", baseline_ms,
              optimized_ms);
}

hunter::ml::DdpgOptions MakeDdpgOptions(bool batched) {
  hunter::ml::DdpgOptions options;
  options.state_dim = 63;
  options.action_dim = 20;
  options.actor_hidden = {64, 64};
  options.critic_hidden = {64, 64};
  options.batch_size = 32;
  options.batched_training = batched;
  return options;
}

hunter::ml::Ddpg MakeAgent(bool batched, uint64_t seed) {
  Rng rng(seed);
  return hunter::ml::Ddpg(MakeDdpgOptions(batched), &rng);
}

template <typename AgentT>
void PrefillAgent(AgentT* agent, size_t count, uint64_t seed) {
  Rng rng(seed);
  for (size_t i = 0; i < count; ++i) {
    hunter::ml::Transition t;
    t.state.resize(63);
    t.next_state.resize(63);
    t.action.resize(20);
    for (double& v : t.state) v = rng.Uniform(-1.0, 1.0);
    for (double& v : t.next_state) v = rng.Uniform(-1.0, 1.0);
    for (double& v : t.action) v = rng.Uniform(0.0, 1.0);
    t.reward = rng.Uniform(-1.0, 1.0);
    t.terminal = rng.Bernoulli(0.05);
    agent->AddTransition(std::move(t));
  }
}

void BenchDdpg(bool smoke) {
  const int equiv_steps = smoke ? 5 : 30;
  const int iters = smoke ? 3 : 100;

  // Equivalence: three agents from the same seed — the seed replica, the
  // in-tree per-sample path, and the batched path; per-step losses and the
  // final policy must agree across all of them.
  Rng seed_rng(0xBEEF03);
  ref::SeedDdpg seed_agent(MakeDdpgOptions(/*batched=*/false), &seed_rng);
  hunter::ml::Ddpg scalar_agent = MakeAgent(/*batched=*/false, 0xBEEF03);
  hunter::ml::Ddpg batched_agent = MakeAgent(/*batched=*/true, 0xBEEF03);
  PrefillAgent(&seed_agent, 256, 0xBEEF04);
  PrefillAgent(&scalar_agent, 256, 0xBEEF04);
  PrefillAgent(&batched_agent, 256, 0xBEEF04);

  double scalar_loss_diff = 0.0;
  double seed_loss_diff = 0.0;
  for (int i = 0; i < equiv_steps; ++i) {
    const double seed_loss = seed_agent.TrainStep();
    const double scalar_loss = scalar_agent.TrainStep();
    const double batched_loss = batched_agent.TrainStep();
    scalar_loss_diff =
        std::max(scalar_loss_diff, std::abs(scalar_loss - batched_loss));
    seed_loss_diff =
        std::max(seed_loss_diff, std::abs(seed_loss - batched_loss));
  }
  RecordEquiv("ddpg_loss_batched_vs_scalar", scalar_loss_diff, 1e-9);
  RecordEquiv("ddpg_loss_batched_vs_seed", seed_loss_diff, 1e-9);

  Rng probe_rng(0xBEEF05);
  std::vector<double> probe(63);
  for (double& v : probe) v = probe_rng.Uniform(-1.0, 1.0);
  RecordEquiv("ddpg_policy_batched_vs_scalar",
              MaxAbsDiff(scalar_agent.Act(probe), batched_agent.Act(probe)),
              1e-9);

  // Headline row: the seed implementation vs. the batched rewrite. The
  // second row isolates the batching itself by timing the in-tree
  // per-sample path (which already shares the buffer-indexing and Adam
  // improvements) against the batched one.
  const double seed_ms = TimeMs([&] { seed_agent.TrainStep(); }, iters);
  const double scalar_ms = TimeMs([&] { scalar_agent.TrainStep(); }, iters);
  const double batched_ms = TimeMs([&] { batched_agent.TrainStep(); }, iters);
  RecordBench("ddpg_train_step", "state 63, action 20, batch 32, hidden 64x64",
              seed_ms, batched_ms);
  RecordBench("ddpg_train_step_scalar",
              "same config; baseline = in-tree per-sample path", scalar_ms,
              batched_ms);
}

void BenchForest(bool smoke) {
  const size_t n = smoke ? 60 : 140;
  const size_t d = smoke ? 12 : 65;
  const size_t pool_threads = g_pool_threads;
  hunter::ml::RandomForestOptions options;
  options.num_trees = smoke ? 20 : 200;
  const int iters = smoke ? 1 : 3;

  Rng data_rng(0xBEEF06);
  Matrix x;
  std::vector<double> y;
  MakeRegressionData(n, d, &data_rng, &x, &y);

  // Reference (seed) forest vs. the rewrite, serial, from the same RNG
  // state: importances and spot predictions must agree.
  ref::RandomForest ref_forest;
  hunter::ml::RandomForest new_serial;
  {
    Rng rng(0xBEEF07);
    ref_forest.Fit(x, y, options, &rng);
  }
  {
    Rng rng(0xBEEF07);
    new_serial.Fit(x, y, options, &rng);
  }
  double diff = MaxAbsDiff(ref_forest.feature_importance(),
                           new_serial.feature_importance());
  for (size_t r = 0; r < std::min<size_t>(16, n); ++r) {
    const std::vector<double> row = x.Row(r);
    diff = std::max(diff,
                    std::abs(ref_forest.Predict(row) - new_serial.Predict(row)));
  }
  RecordEquiv("rf_new_vs_reference", diff, 1e-9);

  // Parallel fit must be bit-identical to serial, at several pool widths.
  double parallel_diff = 0.0;
  for (const size_t threads : {2u, 4u}) {
    ThreadPool pool(threads);
    hunter::ml::RandomForest new_parallel;
    Rng rng(0xBEEF07);
    new_parallel.Fit(x, y, options, &rng, &pool);
    for (size_t c = 0; c < d; ++c) {
      const double delta = new_parallel.feature_importance()[c] -
                           new_serial.feature_importance()[c];
      parallel_diff = std::max(parallel_diff, std::abs(delta));
    }
    for (size_t r = 0; r < std::min<size_t>(16, n); ++r) {
      const std::vector<double> row = x.Row(r);
      parallel_diff =
          std::max(parallel_diff,
                   std::abs(new_parallel.Predict(row) - new_serial.Predict(row)));
    }
  }
  RecordEquiv("rf_parallel_bitidentical_serial", parallel_diff, 0.0);

  const double baseline_ms = TimeMs(
      [&] {
        Rng rng(0xBEEF07);
        ref::RandomForest forest;
        forest.Fit(x, y, options, &rng);
      },
      iters);
  const double serial_ms = TimeMs(
      [&] {
        Rng rng(0xBEEF07);
        hunter::ml::RandomForest forest;
        forest.Fit(x, y, options, &rng);
      },
      iters);
  ThreadPool pool(pool_threads);
  const double optimized_ms = TimeMs(
      [&] {
        Rng rng(0xBEEF07);
        hunter::ml::RandomForest forest;
        forest.Fit(x, y, options, &rng, &pool);
      },
      iters);
  RecordBench("rf_fit_serial",
              std::to_string(options.num_trees) + " trees, n=" +
                  std::to_string(n) + ", d=" + std::to_string(d),
              baseline_ms, serial_ms);
  RecordBench("rf_fit",
              std::to_string(options.num_trees) + " trees, n=" +
                  std::to_string(n) + ", d=" + std::to_string(d) + ", pool=" +
                  std::to_string(pool.num_threads()),
              baseline_ms, optimized_ms, pool.num_threads());
}

void BenchGpFit(bool smoke) {
  // The BO tuners' steady state: one new observation per Observe, one Fit
  // per observation over the growing sample window. The baseline pays a
  // full refactorization per step; the incremental GP grows its factor.
  const size_t n = smoke ? 24 : 120;
  const size_t d = smoke ? 8 : 48;
  const size_t n0 = 4;  // observations fitted before the growth loop
  const int iters = smoke ? 1 : 3;
  Rng data_rng(0xBEEF09);
  Matrix x;
  std::vector<double> y;
  MakeRegressionData(n, d, &data_rng, &x, &y);

  // Both paths rebuild the prefix matrix per step, exactly like the tuners
  // rebuild their window matrix per Observe; only Fit's cost differs.
  auto prefix_x = [&](size_t m) {
    Matrix p(m, d);
    for (size_t r = 0; r < m; ++r) {
      for (size_t c = 0; c < d; ++c) p.At(r, c) = x.At(r, c);
    }
    return p;
  };
  auto prefix_y = [&](size_t m) {
    return std::vector<double>(y.begin(), y.begin() + static_cast<long>(m));
  };

  // Equivalence: run the growth loop once on each path and compare the
  // final posteriors at random probes.
  ref::SeedGp seed_gp;
  hunter::ml::GaussianProcess inc_gp;
  for (size_t m = n0; m <= n; ++m) {
    seed_gp.Fit(prefix_x(m), prefix_y(m));
    inc_gp.Fit(prefix_x(m), prefix_y(m));
  }
  Rng probe_rng(0xBEEF10);
  double diff = 0.0;
  for (int p = 0; p < 16; ++p) {
    std::vector<double> probe(d);
    for (double& v : probe) v = probe_rng.Uniform(0.0, 1.0);
    const auto seed_pred = seed_gp.Predict(probe);
    const auto inc_pred = inc_gp.Predict(probe);
    diff = std::max(diff, std::abs(seed_pred.mean - inc_pred.mean));
    diff = std::max(diff, std::abs(seed_pred.variance - inc_pred.variance));
    diff = std::max(diff, std::abs(seed_gp.ExpectedImprovement(probe, 0.5) -
                                   inc_gp.ExpectedImprovement(probe, 0.5)));
  }
  RecordEquiv("gp_incremental_vs_seed", diff, 1e-9);
  // The growth loop must actually have taken the rank-1 append path (one
  // full refit at n0, one append per later step); a silent fallback to
  // full refits would make the timing below meaningless.
  const double expected_appends = static_cast<double>(n - n0);
  RecordEquiv("gp_incremental_path_used",
              std::abs(static_cast<double>(inc_gp.incremental_updates()) -
                       expected_appends),
              0.0);

  const double baseline_ms = TimeMs(
      [&] {
        ref::SeedGp gp;
        for (size_t m = n0; m <= n; ++m) gp.Fit(prefix_x(m), prefix_y(m));
      },
      iters);
  const double optimized_ms = TimeMs(
      [&] {
        hunter::ml::GaussianProcess gp;
        for (size_t m = n0; m <= n; ++m) gp.Fit(prefix_x(m), prefix_y(m));
      },
      iters);
  RecordBench("gp_fit_incremental",
              "grow " + std::to_string(n0) + "->" + std::to_string(n) +
                  " obs, d=" + std::to_string(d),
              baseline_ms, optimized_ms);
}

void BenchGpEiBatch(bool smoke) {
  // One Propose in OtterTune/ResTune scores every candidate with EI; the
  // baseline is the seed's per-candidate Predict (two substitution passes
  // and an allocating kernel row each), the optimized path one GEMM-backed
  // ExpectedImprovementBatch call.
  const size_t n = smoke ? 24 : 120;
  const size_t d = smoke ? 8 : 48;
  const size_t candidates = smoke ? 20 : 200;
  const int iters = smoke ? 2 : 20;
  Rng data_rng(0xBEEF11);
  Matrix x;
  std::vector<double> y;
  MakeRegressionData(n, d, &data_rng, &x, &y);

  ref::SeedGp seed_gp;
  hunter::ml::GaussianProcess gp;
  seed_gp.Fit(x, y);
  gp.Fit(x, y);
  const double best = *std::max_element(y.begin(), y.end());

  const Matrix cand = RandomMatrix(candidates, d, &data_rng);
  // The seed tuner held each candidate as a vector — prebuild those so the
  // baseline times the seed's scoring work, not row extraction.
  std::vector<std::vector<double>> cand_rows(candidates);
  for (size_t c = 0; c < candidates; ++c) cand_rows[c] = cand.Row(c);

  std::vector<double> seed_scores(candidates);
  for (size_t c = 0; c < candidates; ++c) {
    seed_scores[c] = seed_gp.ExpectedImprovement(cand_rows[c], best);
  }
  std::vector<double> batch_scores;
  gp.ExpectedImprovementBatch(cand, best, &batch_scores);
  RecordEquiv("gp_ei_batch_vs_seed", MaxAbsDiff(seed_scores, batch_scores),
              1e-9);

  double sink = 0.0;
  const double baseline_ms = TimeMs(
      [&] {
        for (size_t c = 0; c < candidates; ++c) {
          sink += seed_gp.ExpectedImprovement(cand_rows[c], best);
        }
      },
      iters);
  const double optimized_ms = TimeMs(
      [&] {
        gp.ExpectedImprovementBatch(cand, best, &batch_scores);
        sink += batch_scores[0];
      },
      iters);
  if (sink == 42.0) std::printf("unlikely\n");  // keep the sink alive
  RecordBench("gp_ei_batch",
              std::to_string(candidates) + " candidates, n=" +
                  std::to_string(n) + ", d=" + std::to_string(d),
              baseline_ms, optimized_ms);
}

void BenchEngineEvalCached(bool smoke) {
  // The fault-retry path: a straggler's cancelled run is rolled back and
  // re-dispatched, so the clone re-evaluates the identical (config,
  // workload, warmth, RNG position) key. With the memo cache the replay is
  // a lookup; without it the engine runs again. Results must match exactly
  // either way — the cache saves real CPU, never changes an answer.
  const int iters = smoke ? 1 : 5;
  const int cycles = smoke ? 2 : 4;  // snapshot/run/rollback/re-run pairs
  const hunter::cdb::KnobCatalog catalog = hunter::cdb::MySqlCatalog();
  const hunter::cdb::WorkloadProfile workload;  // engine defaults

  auto make_instance = [&](bool cached, uint64_t seed) {
    auto inst = std::make_unique<hunter::cdb::CdbInstance>(
        &catalog, hunter::cdb::MySqlEvaluationInstance(),
        hunter::cdb::MySqlEngineTuning(), seed);
    inst->set_eval_cache_enabled(cached);
    return inst;
  };

  // Equivalence: a rolled-back replay served from the cache must equal the
  // original run bit for bit, and a cache-off instance from the same seed
  // must produce the same results (the cache never changes an answer).
  auto run_cycles = [&](hunter::cdb::CdbInstance* inst,
                        std::vector<double>* out) {
    out->clear();
    for (int cyc = 0; cyc < cycles; ++cyc) {
      const auto snapshot = inst->CaptureState();
      const hunter::cdb::PerfResult first = inst->StressTest(workload);
      inst->RestoreState(snapshot);
      const hunter::cdb::PerfResult replay = inst->StressTest(workload);
      for (const hunter::cdb::PerfResult* r : {&first, &replay}) {
        out->push_back(r->throughput_tps);
        out->push_back(r->latency_p95_ms);
        out->push_back(r->latency_p99_ms);
        out->insert(out->end(), r->metrics.begin(), r->metrics.end());
      }
    }
  };
  std::vector<double> cached_results;
  std::vector<double> uncached_results;
  {
    auto inst = make_instance(/*cached=*/true, 0xBEEF12);
    run_cycles(inst.get(), &cached_results);
    RecordEquiv("engine_cache_hits_seen",
                std::abs(static_cast<double>(inst->eval_cache_stats().hits) -
                         static_cast<double>(cycles)),
                0.0);
  }
  {
    auto inst = make_instance(/*cached=*/false, 0xBEEF12);
    run_cycles(inst.get(), &uncached_results);
  }
  RecordEquiv("engine_cached_vs_real",
              MaxAbsDiff(cached_results, uncached_results), 0.0);

  auto cached_inst = make_instance(/*cached=*/true, 0xBEEF13);
  auto uncached_inst = make_instance(/*cached=*/false, 0xBEEF13);
  std::vector<double> scratch;
  const double baseline_ms = TimeMs(
      [&] { run_cycles(uncached_inst.get(), &scratch); }, iters);
  const double optimized_ms = TimeMs(
      [&] { run_cycles(cached_inst.get(), &scratch); }, iters);
  RecordBench("engine_eval_cached",
              std::to_string(cycles) + " run+rolled-back-replay cycles",
              baseline_ms, optimized_ms);
}

void BenchZipfDraw(bool smoke) {
  // The engine alternates between two Zipf distributions every Run (page
  // draws, then lock-row draws). The seed kept ONE constants cache per Rng,
  // so each switch recomputed the zeta sums, and the rank mapping paid a
  // std::pow(0.5, theta) on every draw. The fast path keeps per-purpose
  // ZipfTables with the pow hoisted into the cached constants.
  const int iters = smoke ? 2 : 10;
  const size_t blocks = smoke ? 16 : 64;
  const size_t block_draws = 64;
  const uint64_t n_pages = 4593;        // TPC-C page space
  const double theta_pages = 0.9;
  const uint64_t n_rows = 1u << 20;     // lock-table hot rows
  const double theta_rows = 0.75;

  // Equivalence: draw-for-draw bit identity across the alternation, and an
  // identical post-stream RNG position.
  double max_diff = 0.0;
  {
    Rng seed_rng(0xBEEF21);
    Rng fast_rng(0xBEEF21);
    hunter::seedref::SeedZipfState state;
    hunter::common::ZipfTable pages_table(n_pages, theta_pages);
    hunter::common::ZipfTable rows_table(n_rows, theta_rows);
    for (size_t b = 0; b < blocks; ++b) {
      const bool page_block = b % 2 == 0;
      const uint64_t n = page_block ? n_pages : n_rows;
      const double theta = page_block ? theta_pages : theta_rows;
      hunter::common::ZipfTable& table = page_block ? pages_table : rows_table;
      for (size_t i = 0; i < block_draws; ++i) {
        const uint64_t want =
            hunter::seedref::SeedZipf(&state, &seed_rng, n, theta);
        const uint64_t got = table.Sample(&fast_rng);
        max_diff = std::max(max_diff,
                            std::abs(static_cast<double>(want) -
                                     static_cast<double>(got)));
      }
    }
    if (seed_rng.NextU64() != fast_rng.NextU64()) {
      max_diff = std::numeric_limits<double>::infinity();
    }
  }
  RecordEquiv("zipf_stream_vs_seed", max_diff, 0.0);

  uint64_t sink = 0;
  const double baseline_ms = TimeMs(
      [&] {
        Rng rng(0xBEEF22);
        hunter::seedref::SeedZipfState state;
        for (size_t b = 0; b < blocks; ++b) {
          const bool page_block = b % 2 == 0;
          const uint64_t n = page_block ? n_pages : n_rows;
          const double theta = page_block ? theta_pages : theta_rows;
          for (size_t i = 0; i < block_draws; ++i) {
            sink += hunter::seedref::SeedZipf(&state, &rng, n, theta);
          }
        }
      },
      iters);
  const double optimized_ms = TimeMs(
      [&] {
        Rng rng(0xBEEF22);
        hunter::common::ZipfTable pages_table(n_pages, theta_pages);
        hunter::common::ZipfTable rows_table(n_rows, theta_rows);
        for (size_t b = 0; b < blocks; ++b) {
          hunter::common::ZipfTable& table =
              b % 2 == 0 ? pages_table : rows_table;
          for (size_t i = 0; i < block_draws; ++i) sink += table.Sample(&rng);
        }
      },
      iters);
  if (sink == 42) std::printf("unlikely\n");  // keep the sink alive
  RecordBench("zipf_draw",
              std::to_string(blocks) + " alternating blocks x " +
                  std::to_string(block_draws) + " draws",
              baseline_ms, optimized_ms);
}

void BenchBufferPoolReplay(bool smoke) {
  // The engine's measured window: a pre-drawn Zipf access stream replayed
  // through the pool with periodic budgeted background flushing. Baseline
  // is the seed std::list + std::unordered_map pool constructed per replay;
  // the fast path re-arms one flat intrusive pool via Reset().
  const int iters = smoke ? 2 : 10;
  const uint64_t capacity = 1024;
  const uint64_t page_space = 8192;
  const size_t accesses = smoke ? 20000 : 100000;

  std::vector<uint64_t> pages(accesses);
  std::vector<uint8_t> is_write(accesses);
  {
    Rng rng(0xBEEF23);
    hunter::common::ZipfTable table(page_space, 0.9);
    for (size_t i = 0; i < accesses; ++i) {
      pages[i] = table.Sample(&rng);
      is_write[i] = rng.Bernoulli(0.35) ? 1 : 0;
    }
  }
  auto replay = [&](auto* pool) {
    for (size_t i = 0; i < accesses; ++i) {
      pool->Access(pages[i], is_write[i] != 0);
      if ((i & 255) == 0) pool->FlushDirty(4);
    }
  };

  // Equivalence: the full counter state after the replay (hit/miss/evict/
  // flush trajectories are pinned access-by-access in the gtest suite).
  {
    hunter::seedref::SeedBufferPool seed_pool(capacity);
    hunter::cdb::BufferPool fast_pool(capacity);
    replay(&seed_pool);
    replay(&fast_pool);
    const std::vector<double> want = {
        static_cast<double>(seed_pool.hits()),
        static_cast<double>(seed_pool.misses()),
        static_cast<double>(seed_pool.dirty_evictions()),
        static_cast<double>(seed_pool.dirty_pages()),
        static_cast<double>(seed_pool.resident_pages())};
    const std::vector<double> got = {
        static_cast<double>(fast_pool.hits()),
        static_cast<double>(fast_pool.misses()),
        static_cast<double>(fast_pool.dirty_evictions()),
        static_cast<double>(fast_pool.dirty_pages()),
        static_cast<double>(fast_pool.resident_pages())};
    RecordEquiv("bufferpool_replay_vs_seed", MaxAbsDiff(want, got), 0.0);
  }

  uint64_t sink = 0;
  const double baseline_ms = TimeMs(
      [&] {
        hunter::seedref::SeedBufferPool pool(capacity);
        replay(&pool);
        sink += pool.hits();
      },
      iters);
  hunter::cdb::BufferPool reused_pool(capacity);
  const double optimized_ms = TimeMs(
      [&] {
        reused_pool.Reset(capacity);
        replay(&reused_pool);
        sink += reused_pool.hits();
      },
      iters);
  if (sink == 42) std::printf("unlikely\n");  // keep the sink alive
  RecordBench("bufferpool_replay",
              std::to_string(accesses) + " accesses, capacity " +
                  std::to_string(capacity),
              baseline_ms, optimized_ms);
}

void BenchEngineEvalCold(bool smoke) {
  // Whole cold stress tests: the seed engine (fresh list+map pool per run,
  // shared Zipf cache thrashing between page and lock draws, epsilon-only
  // fixed point) against the production fast path. The ISSUE acceptance
  // gate: >= 2x on this benchmark with bit-exact outputs.
  const int iters = smoke ? 1 : 5;
  const int evals = smoke ? 2 : 8;
  const hunter::cdb::KnobCatalog catalog = hunter::cdb::MySqlCatalog();
  const hunter::cdb::WorkloadProfile tpcc = hunter::workload::Tpcc();
  const hunter::cdb::WorkloadProfile sbrw =
      hunter::workload::SysbenchReadWrite();
  hunter::seedref::SeedEngine seed_engine(
      &catalog, hunter::cdb::MySqlEvaluationInstance(),
      hunter::cdb::MySqlEngineTuning());
  hunter::cdb::SimulatedEngine engine(&catalog,
                                      hunter::cdb::MySqlEvaluationInstance(),
                                      hunter::cdb::MySqlEngineTuning());

  // Evaluation mix: defaults plus random configurations, alternating
  // workloads and warmth — the shape of a tuner's exploration stream.
  std::vector<hunter::cdb::Configuration> configs;
  configs.push_back(catalog.DefaultConfiguration());
  {
    Rng config_rng(0xBEEF24);
    for (int i = 0; i < 3; ++i) {
      std::vector<double> normalized(catalog.size());
      for (double& v : normalized) v = config_rng.Uniform();
      configs.push_back(catalog.DenormalizeConfiguration(normalized));
    }
  }
  auto run_all = [&](auto* eng, Rng* rng, std::vector<double>* out) {
    for (int i = 0; i < evals; ++i) {
      const hunter::cdb::PerfResult r =
          eng->Run(configs[static_cast<size_t>(i) % configs.size()],
                   i % 2 == 0 ? tpcc : sbrw, /*warm_start=*/false, rng);
      if (out != nullptr) {
        out->push_back(r.throughput_tps);
        out->push_back(r.latency_p95_ms);
        out->push_back(r.latency_p99_ms);
        out->insert(out->end(), r.latents.begin(), r.latents.end());
        out->insert(out->end(), r.metrics.begin(), r.metrics.end());
      }
    }
  };

  // Equivalence: results and the post-stream RNG position, tolerance 0.0.
  {
    Rng seed_rng(0xBEEF25);
    Rng fast_rng(0xBEEF25);
    std::vector<double> want, got;
    run_all(&seed_engine, &seed_rng, &want);
    run_all(&engine, &fast_rng, &got);
    RecordEquiv("engine_cold_vs_seed", MaxAbsDiff(want, got), 0.0);
    RecordEquiv(
        "engine_cold_rng_stream",
        seed_rng.StateFingerprint() == fast_rng.StateFingerprint() ? 0.0 : 1.0,
        0.0);
  }

  const double baseline_ms = TimeMs(
      [&] {
        Rng rng(0xBEEF26);
        run_all(&seed_engine, &rng, nullptr);
      },
      iters);
  const double optimized_ms = TimeMs(
      [&] {
        Rng rng(0xBEEF26);
        run_all(&engine, &rng, nullptr);
      },
      iters);
  RecordBench("engine_eval_cold",
              std::to_string(evals) + " stress tests (TPC-C/SbRW mix)",
              baseline_ms, optimized_ms);
}

void BenchPca(bool smoke) {
  const size_t n = smoke ? 40 : 140;
  const size_t d = smoke ? 12 : 63;
  const int iters = smoke ? 2 : 10;
  Rng rng(0xBEEF08);
  const Matrix data = RandomMatrix(n, d, &rng);

  // Equivalence target: the covariance reformulation (the eigensolver is
  // shared, so comparing covariance inputs pins the whole fit).
  const Matrix standardized = hunter::linalg::Standardize(data, true);
  const Matrix naive_cov = ref::NaiveCovariance(standardized);
  const Matrix gemm_cov = hunter::linalg::Covariance(standardized);
  double cov_diff = 0.0;
  for (size_t r = 0; r < d; ++r) {
    for (size_t c = 0; c < d; ++c) {
      cov_diff = std::max(cov_diff,
                          std::abs(naive_cov.At(r, c) - gemm_cov.At(r, c)));
    }
  }
  RecordEquiv("pca_covariance_gemm_vs_naive", cov_diff, 1e-9);

  // The eigensolvers: the production Householder-tridiagonalize + QL path
  // must agree with the retained cyclic-Jacobi oracle (eigenvalues exactly
  // comparable; eigenvectors are sign-ambiguous, so compare the spectrum
  // and reconstruction instead — the gtest suite covers vectors).
  {
    const auto jacobi = hunter::linalg::SymmetricEigenJacobi(gemm_cov);
    const auto ql = hunter::linalg::SymmetricEigen(gemm_cov);
    RecordEquiv("pca_ql_vs_jacobi_eigenvalues",
                MaxAbsDiff(jacobi.eigenvalues, ql.eigenvalues), 1e-8);
  }

  // The covariance reformulation itself, then the whole fit. The baseline
  // is the seed pipeline end to end: naive covariance into the seed's
  // cyclic-Jacobi eigensolver (retained as SymmetricEigenJacobi).
  const double cov_baseline_ms = TimeMs(
      [&] {
        const Matrix cov = ref::NaiveCovariance(standardized);
        if (cov.rows() == 0) std::printf("unreachable\n");
      },
      iters);
  const double cov_optimized_ms = TimeMs(
      [&] {
        const Matrix cov = hunter::linalg::Covariance(standardized);
        if (cov.rows() == 0) std::printf("unreachable\n");
      },
      iters);
  RecordBench("pca_covariance", std::to_string(n) + "x" + std::to_string(d),
              cov_baseline_ms, cov_optimized_ms);

  const double baseline_ms = TimeMs(
      [&] {
        const Matrix centered = hunter::linalg::Standardize(data, true);
        const Matrix cov = ref::NaiveCovariance(centered);
        const auto eigen = hunter::linalg::SymmetricEigenJacobi(cov);
        if (eigen.eigenvalues.empty()) std::printf("unreachable\n");
      },
      iters);
  const double optimized_ms = TimeMs(
      [&] {
        hunter::ml::Pca pca;
        pca.Fit(data, /*standardize=*/true);
        if (!pca.fitted()) std::printf("unreachable\n");
      },
      iters);
  RecordBench("pca_fit", std::to_string(n) + "x" + std::to_string(d),
              baseline_ms, optimized_ms);
}

// ---------------------------------------------------------------------------
// ISA-tier benchmarks: the same dispatched entry point timed twice, once
// pinned to the scalar tier (SetSimdTierForTesting) and once at the tier
// the host actually dispatches (ClearSimdTierForTesting falls back to
// HUNTER_FORCE_SCALAR / hardware, so a forced-scalar run times scalar both
// ways and honestly reports ~1x at tier "scalar"). The equivalence gates
// demand bit identity — tolerance 0.0 — which the column-lane kernels owe
// to ascending contraction order and separate mul+add (see
// linalg/simd/simd.h).

void BenchGemmSimd(bool smoke) {
  const size_t n = smoke ? 16 : 128;
  const int iters = smoke ? 3 : 40;
  Rng rng(0xBEEF20);
  const Matrix a = RandomMatrix(n, n, &rng);
  const Matrix b = RandomMatrix(n, n, &rng);

  Matrix scalar_out;
  hunter::common::SetSimdTierForTesting(hunter::common::SimdTier::kScalar);
  a.MultiplyInto(b, &scalar_out);
  hunter::common::ClearSimdTierForTesting();
  Matrix simd_out;
  a.MultiplyInto(b, &simd_out);
  double max_diff = 0.0;
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) {
      max_diff =
          std::max(max_diff, std::abs(scalar_out.At(r, c) - simd_out.At(r, c)));
    }
  }
  RecordEquiv("gemm_simd_vs_scalar", max_diff, 0.0);

  double sink = 0.0;
  hunter::common::SetSimdTierForTesting(hunter::common::SimdTier::kScalar);
  const double baseline_ms = TimeMs(
      [&] {
        a.MultiplyInto(b, &scalar_out);
        sink += scalar_out.At(0, 0);
      },
      iters);
  hunter::common::ClearSimdTierForTesting();
  const double optimized_ms = TimeMs(
      [&] {
        a.MultiplyInto(b, &simd_out);
        sink += simd_out.At(0, 0);
      },
      iters);
  if (sink == 42.0) std::printf("unlikely\n");  // keep the sink alive
  RecordBench("gemm_simd", std::to_string(n) + "x" + std::to_string(n) + "x" +
                               std::to_string(n) + " scalar tier vs dispatched",
              baseline_ms, optimized_ms);
}

void BenchGpKernelSimd(bool smoke) {
  // The GP's vectorized kernels end to end: gram build and Cholesky append
  // (SquaredDistInto + CholeskyDowndate4) inside Fit, then the GEMM-backed
  // cross-covariance and squared-distance expansion inside
  // ExpectedImprovementBatch.
  const size_t n = smoke ? 24 : 120;
  const size_t d = smoke ? 8 : 48;
  const size_t candidates = smoke ? 20 : 200;
  const int iters = smoke ? 2 : 20;
  Rng data_rng(0xBEEF21);
  Matrix x;
  std::vector<double> y;
  MakeRegressionData(n, d, &data_rng, &x, &y);
  const Matrix cand = RandomMatrix(candidates, d, &data_rng);
  const double best = *std::max_element(y.begin(), y.end());

  hunter::common::SetSimdTierForTesting(hunter::common::SimdTier::kScalar);
  hunter::ml::GaussianProcess scalar_gp;
  scalar_gp.Fit(x, y);
  std::vector<double> scalar_scores;
  scalar_gp.ExpectedImprovementBatch(cand, best, &scalar_scores);
  hunter::common::ClearSimdTierForTesting();
  hunter::ml::GaussianProcess simd_gp;
  simd_gp.Fit(x, y);
  std::vector<double> simd_scores;
  simd_gp.ExpectedImprovementBatch(cand, best, &simd_scores);
  RecordEquiv("gp_kernel_simd_vs_scalar",
              MaxAbsDiff(scalar_scores, simd_scores), 0.0);

  double sink = 0.0;
  hunter::common::SetSimdTierForTesting(hunter::common::SimdTier::kScalar);
  const double baseline_ms = TimeMs(
      [&] {
        hunter::ml::GaussianProcess gp;
        gp.Fit(x, y);
        gp.ExpectedImprovementBatch(cand, best, &scalar_scores);
        sink += scalar_scores[0];
      },
      iters);
  hunter::common::ClearSimdTierForTesting();
  const double optimized_ms = TimeMs(
      [&] {
        hunter::ml::GaussianProcess gp;
        gp.Fit(x, y);
        gp.ExpectedImprovementBatch(cand, best, &simd_scores);
        sink += simd_scores[0];
      },
      iters);
  if (sink == 42.0) std::printf("unlikely\n");  // keep the sink alive
  RecordBench("gp_kernel_simd",
              "fit n=" + std::to_string(n) + ", d=" + std::to_string(d) +
                  " + EI over " + std::to_string(candidates) + " candidates",
              baseline_ms, optimized_ms);
}

void BenchMlpForwardSimd(bool smoke) {
  const size_t batch = 32;
  const std::vector<size_t> sizes = {63, 64, 64, 20};
  const int iters = smoke ? 3 : 300;
  Rng rng(0xBEEF22);
  hunter::ml::Mlp net(sizes, hunter::ml::Activation::kReLU,
                      hunter::ml::Activation::kTanh, &rng);
  const Matrix input = RandomMatrix(batch, sizes.front(), &rng);

  Matrix scalar_out;
  hunter::common::SetSimdTierForTesting(hunter::common::SimdTier::kScalar);
  net.ForwardBatch(input, &scalar_out);
  hunter::common::ClearSimdTierForTesting();
  Matrix simd_out;
  net.ForwardBatch(input, &simd_out);
  double max_diff = 0.0;
  for (size_t r = 0; r < batch; ++r) {
    for (size_t c = 0; c < sizes.back(); ++c) {
      max_diff =
          std::max(max_diff, std::abs(scalar_out.At(r, c) - simd_out.At(r, c)));
    }
  }
  RecordEquiv("mlp_forward_simd_vs_scalar", max_diff, 0.0);

  hunter::common::SetSimdTierForTesting(hunter::common::SimdTier::kScalar);
  const double baseline_ms = TimeMs(
      [&] { net.ForwardBatch(input, &scalar_out); }, iters);
  hunter::common::ClearSimdTierForTesting();
  const double optimized_ms =
      TimeMs([&] { net.ForwardBatch(input, &simd_out); }, iters);
  RecordBench("mlp_forward_simd", "net {63,64,64,20} batch 32", baseline_ms,
              optimized_ms);
}

// ---------------------------------------------------------------------------

// Scientific notation with `digits` fractional digits, classic locale
// (fprintf "%e" would follow the process locale's decimal separator).
std::string FormatScientific(double value, int digits) {
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os.setf(std::ios::scientific, std::ios::floatfield);
  os.precision(digits);
  os << value;
  return os.str();
}

void WriteJson(const std::string& path, bool smoke) {
  std::ofstream f(path, std::ios::binary);
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  hunter::common::ScopedClassicLocale pin(f);
  f << "{\n";
  f << "  \"schema\": \"hunter-bench-hotpaths-v1\",\n";
  f << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n";
  f << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency()
    << ",\n";
  f << "  \"pool_threads\": " << g_pool_threads << ",\n";
  f << "  \"simd_tier\": \"" << hunter::linalg::simd::ActiveTierName()
    << "\",\n";
  f << "  \"benchmarks\": [\n";
  for (size_t i = 0; i < g_benches.size(); ++i) {
    const BenchResult& b = g_benches[i];
    f << "    {\"name\": \"" << b.name << "\", \"config\": \"" << b.config
      << "\", \"baseline_ms\": "
      << hunter::common::FormatDoubleFixed(b.baseline_ms, 6)
      << ", \"optimized_ms\": "
      << hunter::common::FormatDoubleFixed(b.optimized_ms, 6)
      << ", \"speedup\": " << hunter::common::FormatDoubleFixed(b.Speedup(), 3)
      << ", \"simd_tier\": \"" << b.simd_tier << "\"";
    if (b.pool_threads > 0) f << ", \"pool_threads\": " << b.pool_threads;
    f << "}" << (i + 1 < g_benches.size() ? "," : "") << "\n";
  }
  f << "  ],\n";
  f << "  \"equivalence\": [\n";
  for (size_t i = 0; i < g_equivs.size(); ++i) {
    const EquivResult& e = g_equivs[i];
    f << "    {\"name\": \"" << e.name
      << "\", \"max_abs_diff\": " << FormatScientific(e.max_abs_diff, 3)
      << ", \"tolerance\": " << FormatScientific(e.tolerance, 0)
      << ", \"pass\": " << (e.Pass() ? "true" : "false") << "}"
      << (i + 1 < g_equivs.size() ? "," : "") << "\n";
  }
  f << "  ]\n";
  f << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_hotpaths.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0 ||
        std::strcmp(argv[i], "--mode=smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--mode=full") == 0) {
      smoke = false;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke | --mode=smoke|full] [--out PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  g_time_reps = smoke ? 1 : 5;
  // Pool width: HUNTER_BENCH_THREADS or 4, clamped to the cores actually
  // present. An unclamped width oversubscribes small machines and reports
  // "parallel speedups" that are pure context-switch noise (e.g. pool=4 on
  // a 1-core box losing to the serial baseline).
  const size_t hardware_threads =
      std::max<size_t>(1, std::thread::hardware_concurrency());
  g_pool_threads = std::min<size_t>(g_pool_threads, hardware_threads);
  if (const char* env = std::getenv("HUNTER_BENCH_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) {
      g_pool_threads =
          std::min(static_cast<size_t>(parsed), hardware_threads);
    }
  }

  std::printf(
      "bench_micro_hotpaths (%s mode, hardware_concurrency=%u, "
      "pool_threads=%zu)\n",
      smoke ? "smoke" : "full", std::thread::hardware_concurrency(),
      g_pool_threads);
  BenchGemm(smoke);
  BenchMlpStep(smoke);
  BenchDdpg(smoke);
  BenchForest(smoke);
  BenchGpFit(smoke);
  BenchGpEiBatch(smoke);
  BenchZipfDraw(smoke);
  BenchBufferPoolReplay(smoke);
  BenchEngineEvalCold(smoke);
  BenchEngineEvalCached(smoke);
  BenchPca(smoke);
  BenchGemmSimd(smoke);
  BenchGpKernelSimd(smoke);
  BenchMlpForwardSimd(smoke);
  WriteJson(out_path, smoke);

  bool all_pass = true;
  for (const auto& e : g_equivs) all_pass = all_pass && e.Pass();
  std::printf("%s\n", all_pass ? "all equivalence checks passed"
                               : "EQUIVALENCE FAILURE");
  return all_pass ? 0 : 1;
}
