// Figure 6: best performance after 10 hours of DRL tuning (65 knobs) as a
// function of the number of GA-generated warm-start samples, on TPC-C and
// Sysbench. Paper: performance improves with more samples and plateaus at
// ~140 samples, which is why HUNTER's Sample Factory produces 140.

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "common/table_printer.h"

namespace hunter::bench {
namespace {

double BestAfterDrl(const Scenario& scenario, size_t ga_samples,
                    uint64_t seed) {
  auto controller = MakeController(scenario, 1, 42);
  core::HunterOptions options;
  options.ga.target_samples = ga_samples;
  // Figure 6 isolates the warm-start effect: DRL over all 65 knobs.
  options.use_pca = false;
  options.use_rf = false;
  auto tuner = MakeHunter(scenario, options, seed);
  tuners::HarnessOptions harness;
  // "10 hours DRL tuning": budget = GA phase + 10 hours.
  harness.budget_hours =
      static_cast<double>(ga_samples) * 165.0 / 3600.0 + 10.0;
  const auto result = tuners::RunTuning(tuner.get(), controller.get(), harness);
  return result.best_throughput;
}

}  // namespace
}  // namespace hunter::bench

int main() {
  using namespace hunter;
  std::printf(
      "## Figure 6: best performance vs number of GA warm-start samples\n");
  std::printf("(10 h of 65-knob DRL after the GA phase; paper: plateau at "
              "~140 samples)\n\n");
  auto tpcc = bench::MySqlTpcc();
  auto sysbench = bench::MySqlSysbenchRw();
  common::TablePrinter table(
      {"#GA samples", "TPC-C (txn/min)", "Sysbench RW (txn/s)"});
  for (size_t count : {20u, 60u, 100u, 140u, 180u}) {
    const double tpcc_best = bench::BestAfterDrl(tpcc, count, 7);
    const double sysbench_best = bench::BestAfterDrl(sysbench, count, 7);
    table.AddRow({std::to_string(count),
                  common::FormatDouble(tpcc_best * 60.0, 0),
                  common::FormatDouble(sysbench_best, 0)});
  }
  table.Print(std::cout);
  std::printf(
      "\nthe gains should flatten near 140 samples; beyond that the cost of "
      "producing samples outweighs the benefit (§3.1).\n");
  return 0;
}
