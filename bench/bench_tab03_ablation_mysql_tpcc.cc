// Table 3: ablation study on MySQL with TPC-C (72 h, 1 cloned CDB).
// Paper reference rows (T txn/min, L ms, rec. time h):
//   DDPG            67012  35.8  48
//   DDPG+GA         69418  34.8  37
//   DDPG+GA+PCA     68346  35.4  22
//   DDPG+GA+RF      68862  34.7  32
//   DDPG+GA+FES     69950  35.4  27
//   HUNTER (all)    68942  34.0  17
// Expected shape: every module combination beats plain DDPG; GA+FES gives
// the best raw performance; PCA/RF trade ~1.5% performance for a much
// shorter recommendation time; the full system is fastest.

#include "bench/bench_ablation.h"

int main() {
  std::printf("## Table 3: ablation study on MySQL with TPC-C (72 h)\n\n");
  auto scenario = hunter::bench::MySqlTpcc();
  hunter::bench::RunAblationTable(scenario, 60.0, "txn/min", 7);
  std::printf(
      "\npaper: DDPG 67012/35.8/48h ... HUNTER 68942/34.0/17h (rec. time "
      "-65%%)\n");
  return 0;
}
