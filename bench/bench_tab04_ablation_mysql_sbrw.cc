// Table 4: ablation study on MySQL with Sysbench RW (72 h, 1 cloned CDB).
// Paper reference rows (T txn/s, L ms, rec. time h):
//   DDPG 4230/118.3/47, DDPG+GA 4680/109.3/38, +PCA 4592/110.2/32,
//   +RF 4601/110.1/27, +FES 4783/107.6/33, HUNTER 4703/108.1/21.

#include "bench/bench_ablation.h"

int main() {
  std::printf("## Table 4: ablation study on MySQL with Sysbench RW (72 h)\n\n");
  auto scenario = hunter::bench::MySqlSysbenchRw();
  hunter::bench::RunAblationTable(scenario, 1.0, "txn/s", 7);
  std::printf(
      "\npaper: DDPG 4230/118.3/47h ... HUNTER 4703/108.1/21h\n");
  return 0;
}
