// Figure 11: throughput achieved under different costs (number of cloned
// instances x tuning time) on the Production workload: 1 instance x 10 h,
// 3 instances x 10 h, and 20 instances x 5 h.
// Paper: with 1x10h HUNTER clearly leads; with 3x10h HUNTER still leads;
// with 20x5h all methods reach similar performance — parallelization is
// conducive to every method, and HUNTER profits with the fewest resources.

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "common/table_printer.h"

namespace hunter::bench {
namespace {

double BestUnderBudget(const std::string& method, const Scenario& scenario,
                       int clones, double hours, uint64_t seed) {
  auto controller = MakeController(scenario, clones, 42);
  auto tuner = MakeTuner(method, scenario, seed);
  tuners::HarnessOptions harness;
  harness.budget_hours = hours;
  return tuners::RunTuning(tuner.get(), controller.get(), harness)
      .best_throughput;
}

}  // namespace
}  // namespace hunter::bench

int main() {
  using namespace hunter;
  std::printf(
      "## Figure 11: throughput under different costs (Production)\n\n");
  auto scenario = bench::MySqlProduction(true);
  const std::vector<std::string> methods = {"BestConfig", "OtterTune",
                                            "CDBTune", "HUNTER"};
  common::TablePrinter table(
      {"method", "1 inst x 10 h", "3 inst x 10 h", "20 inst x 5 h"});
  for (const auto& method : methods) {
    table.AddRow(
        {method,
         common::FormatDouble(
             bench::BestUnderBudget(method, scenario, 1, 10, 7), 0),
         common::FormatDouble(
             bench::BestUnderBudget(method, scenario, 3, 10, 7), 0),
         common::FormatDouble(
             bench::BestUnderBudget(method, scenario, 20, 5, 7), 0)});
  }
  std::printf("best throughput (txn/s):\n");
  table.Print(std::cout);
  std::printf(
      "\npaper shape: HUNTER leads at 1x10h and 3x10h; at 20x5h all methods "
      "converge to similar performance.\n");
  return 0;
}
