// Table 1: time breakdown for one tuning step. The workload execution,
// metric collection, and knob deployment costs are the simulated charges
// (taken from the paper's measurements: 142.7 s / 0.2 ms / 21.3 s); the
// model-update and knob-recommendation times are measured for real on this
// machine from the Recommender's DDPG (paper: 71 ms / 2.57 ms).

#include <chrono>
#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "common/table_printer.h"
#include "controller/actor.h"

namespace hunter::bench {
namespace {

double MeasureSeconds(const std::function<void()>& fn, int repeats) {
  // hunterlint: allow(no-wall-clock) Table 1 reports real per-step host time
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < repeats; ++i) fn();
  // hunterlint: allow(no-wall-clock) Table 1 reports real per-step host time
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count() / repeats;
}

}  // namespace
}  // namespace hunter::bench

int main() {
  using namespace hunter;
  std::printf("## Table 1: time breakdown for tuning in each step\n\n");

  // Drive HUNTER into its recommend phase so we can time its model.
  auto scenario = bench::MySqlTpcc();
  auto controller = bench::MakeController(scenario, 1, 42);
  core::HunterOptions options;
  options.ga.target_samples = 60;
  options.recommender.warm_start_updates = 50;
  auto tuner = bench::MakeHunter(scenario, options, 7);
  for (int i = 0; i < 65; ++i) {
    tuner->Observe(controller->EvaluateBatch(tuner->Propose(1)));
  }

  // Model update: one Observe round (replay insert + bounded DDPG updates).
  auto sample_batch = controller->EvaluateBatch(tuner->Propose(1));
  const double update_s = bench::MeasureSeconds(
      [&] { tuner->Observe(sample_batch); }, 20);
  // Knob recommendation: one Propose call.
  const double recommend_s =
      bench::MeasureSeconds([&] { tuner->Propose(1); }, 50);

  common::TablePrinter table({"step", "this repo", "paper"});
  table.AddRow({"Workload Execution",
                common::FormatDouble(controller::Actor::kExecutionSeconds, 1) +
                    " s (simulated)",
                "142.7 s"});
  table.AddRow({"Metrics Collection",
                common::FormatDouble(
                    controller::Actor::kCollectionSeconds * 1000.0, 1) +
                    " ms (simulated)",
                "0.2 ms"});
  table.AddRow({"Model Update",
                common::FormatDouble(update_s * 1000.0, 1) + " ms (measured)",
                "71 ms"});
  table.AddRow({"Knobs Deployment",
                common::FormatDouble(cdb::CdbInstance::kRestartDeploySeconds,
                                     1) +
                    " s (simulated)",
                "21.3 s"});
  table.AddRow({"Knobs Recommendation",
                common::FormatDouble(recommend_s * 1000.0, 2) +
                    " ms (measured)",
                "2.57 ms"});
  table.Print(std::cout);

  std::printf(
      "\nworkload execution dominates the step cost, which is why the paper "
      "parallelizes stress tests across cloned CDBs.\n");
  return 0;
}
