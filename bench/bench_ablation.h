// Shared driver for the ablation studies (Tables 3-5): runs HUNTER with a
// given combination of the DDPG / GA / PCA / RF / FES modules for 72 hours
// on one cloned CDB and reports optimal T, L and recommendation time.

#ifndef HUNTER_BENCH_BENCH_ABLATION_H_
#define HUNTER_BENCH_BENCH_ABLATION_H_

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/table_printer.h"

namespace hunter::bench {

struct AblationVariant {
  const char* label;  // e.g. "DDPG+GA+FES"
  bool ga, pca, rf, fes;
};

// The six rows of Tables 3-5.
inline std::vector<AblationVariant> AblationVariants() {
  return {
      {"DDPG (=CDBTune)", false, false, false, false},
      {"DDPG+GA", true, false, false, false},
      {"DDPG+GA+PCA", true, true, false, false},
      {"DDPG+GA+RF", true, false, true, false},
      {"DDPG+GA+FES", true, false, false, true},
      {"HUNTER (all)", true, true, true, true},
  };
}

inline void RunAblationTable(const Scenario& scenario, double unit_scale,
                             const char* unit, uint64_t seed) {
  common::TablePrinter table({"modules", std::string("T (") + unit + ")",
                              "L (ms)", "rec. time (h)"});
  for (const AblationVariant& variant : AblationVariants()) {
    core::HunterOptions options;
    options.use_ga = variant.ga;
    options.use_pca = variant.pca;
    options.use_rf = variant.rf;
    options.use_fes = variant.fes;
    auto controller = MakeController(scenario, 1, 42);
    auto tuner = MakeHunter(scenario, options, seed);
    tuners::HarnessOptions harness;
    harness.budget_hours = 72.0;
    const auto result =
        tuners::RunTuning(tuner.get(), controller.get(), harness);
    table.AddRow({variant.label,
                  common::FormatDouble(result.best_throughput * unit_scale, 0),
                  common::FormatDouble(result.best_latency, 1),
                  common::FormatDouble(result.recommendation_hours, 1)});
  }
  table.Print(std::cout);
}

}  // namespace hunter::bench

#endif  // HUNTER_BENCH_BENCH_ABLATION_H_
