// Figure 1 + Table 1 context: the cold-start motivation. (a) tuning steps
// needed by each state-of-the-art method to reach its optimal throughput on
// TPC-C (paper: at least 475 steps); (b) tuning time to the optimum for
// TPC-C, Sysbench RW and Sysbench WO (paper: at least 40 hours).

#include <cstdio>
#include <iostream>
#include <map>

#include "bench/bench_common.h"
#include "common/table_printer.h"

namespace hunter::bench {
namespace {

struct Row {
  size_t steps_to_optimum = 0;
  double hours_to_optimum = 0.0;
};

Row Measure(const std::string& method, const Scenario& scenario) {
  auto controller = MakeController(scenario, 1, 42);
  auto tuner = MakeTuner(method, scenario, 7);
  tuners::HarnessOptions harness;
  harness.budget_hours = 70.0;
  const tuners::TuningResult result =
      tuners::RunTuning(tuner.get(), controller.get(), harness);
  // Steps to optimum = steps completed by the recommendation time.
  const double step_hours =
      result.curve.empty() ? 1.0
                           : result.curve.back().hours /
                                 static_cast<double>(result.curve.size());
  Row row;
  row.steps_to_optimum = static_cast<size_t>(
      result.recommendation_hours / std::max(1e-9, step_hours));
  row.hours_to_optimum = result.recommendation_hours;
  return row;
}

}  // namespace
}  // namespace hunter::bench

int main() {
  using namespace hunter;
  const std::vector<std::string> methods = {"BestConfig", "OtterTune",
                                            "CDBTune", "QTune"};
  auto tpcc = bench::MySqlTpcc();
  auto rw = bench::MySqlSysbenchRw();
  auto wo = bench::MySqlSysbenchWo();

  std::map<std::string, bench::Row> tpcc_rows, rw_rows, wo_rows;
  for (const auto& method : methods) {
    tpcc_rows[method] = bench::Measure(method, tpcc);
    rw_rows[method] = bench::Measure(method, rw);
    wo_rows[method] = bench::Measure(method, wo);
  }

  std::printf("## Figure 1(a): tuning steps to the optimal throughput (TPC-C)\n");
  std::printf("paper: >= 475 steps for the state-of-the-art methods\n\n");
  common::TablePrinter steps_table({"method", "steps", "hours"});
  for (const auto& method : methods) {
    steps_table.AddRow({method,
                        std::to_string(tpcc_rows[method].steps_to_optimum),
                        common::FormatDouble(
                            tpcc_rows[method].hours_to_optimum, 1)});
  }
  steps_table.Print(std::cout);

  std::printf(
      "\n## Figure 1(b): tuning time to the optimum per workload (hours)\n");
  std::printf("paper: >= 40 hours for the state-of-the-art methods\n\n");
  common::TablePrinter time_table(
      {"method", "TPC-C", "Sysbench RW", "Sysbench WO"});
  for (const auto& method : methods) {
    time_table.AddRow(
        {method, common::FormatDouble(tpcc_rows[method].hours_to_optimum, 1),
         common::FormatDouble(rw_rows[method].hours_to_optimum, 1),
         common::FormatDouble(wo_rows[method].hours_to_optimum, 1)});
  }
  time_table.Print(std::cout);
  return 0;
}
