// Figure 10: throughput on the real-world Production workload with a drift
// at the 48-hour mark (the 9 am capture is swapped for the 9 pm capture).
// Paper: HUNTER leads from ~8 h; at the drift all methods plummet below
// 3700 txn/s, and the learning-based methods (HUNTER, CDBTune) bounce back
// faster than the search-based ones, with HUNTER recovering the best
// configuration quickest.

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "common/table_printer.h"
#include "workload/workloads.h"

namespace hunter::bench {
namespace {

struct DriftResult {
  std::string method;
  std::vector<tuners::CurvePoint> curve;  // merged pre+post drift
};

DriftResult RunWithDrift(const std::string& method, uint64_t seed) {
  auto morning = MySqlProduction(true);
  auto controller = MakeController(morning, 1, 42);
  auto tuner = MakeTuner(method, morning, seed);
  if (method == "HUNTER") {
    static_cast<core::HunterTuner*>(tuner.get())->set_name("HUNTER");
  }

  tuners::HarnessOptions first;
  first.budget_hours = 48.0;
  tuners::TuningResult pre =
      tuners::RunTuning(tuner.get(), controller.get(), first);

  // Drift at 48 h: swap the replayed workload; keep the tuner's state (the
  // learning-based methods retain their models; search-based methods retain
  // their shrunken bounds).
  controller->SetWorkload(workload::Production(false));
  tuners::HarnessOptions second;
  second.budget_hours = 72.0;
  tuners::TuningResult post =
      tuners::RunTuning(tuner.get(), controller.get(), second);

  DriftResult result;
  result.method = method;
  result.curve = pre.curve;
  for (auto point : post.curve) result.curve.push_back(point);
  return result;
}

}  // namespace
}  // namespace hunter::bench

int main() {
  using namespace hunter;
  std::printf(
      "## Figure 10: Production workload with drift at the 48 h mark\n");
  std::printf(
      "(9 am capture for 48 h, then the drifted 9 pm capture for 24 h)\n\n");
  const std::vector<std::string> methods = {"BestConfig", "OtterTune",
                                            "CDBTune", "HUNTER"};
  std::vector<bench::DriftResult> results;
  for (const auto& method : methods) {
    results.push_back(bench::RunWithDrift(method, 7));
  }

  common::TablePrinter table(
      {"hours", methods[0], methods[1], methods[2], methods[3]});
  // Post-drift best-so-far restarts from the drifted workload's levels.
  for (double h : {4.0, 8.0, 16.0, 24.0, 36.0, 47.9, 50.0, 54.0, 60.0, 72.0}) {
    std::vector<std::string> row = {common::FormatDouble(h, 1)};
    for (const auto& result : results) {
      double value = 0.0;
      for (const auto& point : result.curve) {
        if (point.hours <= h) value = point.best_throughput;
      }
      row.push_back(common::FormatDouble(value, 0));
    }
    table.AddRow(std::move(row));
  }
  std::printf("best throughput so far (txn/s); drift occurs at 48 h:\n");
  table.Print(std::cout);
  std::printf(
      "\nafter the drift the learning-based methods should recover high "
      "throughput in fewer hours than the search-based ones (§5).\n");
  return 0;
}
