// Table 5: ablation study on PostgreSQL with TPC-C (72 h, 1 cloned CDB).
// Paper reference rows (T txn/min, L ms, rec. time h):
//   DDPG 74456/95.7/43, DDPG+GA 77212/87.7/32, +PCA 76201/88.5/24,
//   +RF 76892/89.2/23, +FES 78456/85.7/27, HUNTER 77816/86.5/19.

#include "bench/bench_ablation.h"

int main() {
  std::printf(
      "## Table 5: ablation study on PostgreSQL with TPC-C (72 h)\n\n");
  auto scenario = hunter::bench::PostgresTpcc();
  hunter::bench::RunAblationTable(scenario, 60.0, "txn/min", 7);
  std::printf("\npaper: DDPG 74456/95.7/43h ... HUNTER 77816/86.5/19h\n");
  return 0;
}
