// Microbenchmarks (google-benchmark) for the per-step costs behind the
// paper's Table 1 and for the core ML components: one simulated stress
// test, a DDPG training step, a GP refit + EI sweep, a PCA fit, a Random
// Forest fit, and the lock-table replay.

#include <benchmark/benchmark.h>

#include "cdb/knob_catalog.h"
#include "cdb/lock_manager.h"
#include "cdb/simulated_engine.h"
#include "common/rng.h"
#include "linalg/matrix.h"
#include "ml/ddpg.h"
#include "ml/gaussian_process.h"
#include "ml/pca.h"
#include "ml/random_forest.h"
#include "workload/workloads.h"

namespace hunter {
namespace {

void BM_EngineStressTest(benchmark::State& state) {
  const cdb::KnobCatalog catalog = cdb::MySqlCatalog();
  cdb::SimulatedEngine engine(&catalog, cdb::MySqlEvaluationInstance(),
                              cdb::MySqlEngineTuning());
  const cdb::Configuration config = catalog.DefaultConfiguration();
  const cdb::WorkloadProfile workload = workload::Tpcc();
  common::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Run(config, workload, true, &rng));
  }
}
BENCHMARK(BM_EngineStressTest);

void BM_DdpgTrainStep(benchmark::State& state) {
  common::Rng rng(2);
  ml::DdpgOptions options;
  options.state_dim = 13;
  options.action_dim = 20;
  ml::Ddpg agent(options, &rng);
  for (int i = 0; i < 256; ++i) {
    ml::Transition t;
    t.state.assign(13, rng.Uniform());
    t.action.assign(20, rng.Uniform());
    t.reward = rng.Uniform();
    t.next_state = t.state;
    t.terminal = true;
    agent.AddTransition(std::move(t));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.TrainStep());
  }
}
BENCHMARK(BM_DdpgTrainStep);

void BM_DdpgAct(benchmark::State& state) {
  common::Rng rng(3);
  ml::DdpgOptions options;
  options.state_dim = 13;
  options.action_dim = 20;
  ml::Ddpg agent(options, &rng);
  const std::vector<double> s(13, 0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.Act(s));
  }
}
BENCHMARK(BM_DdpgAct);

void BM_GpFitAndEi(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  common::Rng rng(4);
  linalg::Matrix x(n, 65);
  std::vector<double> y(n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < 65; ++c) x.At(r, c) = rng.Uniform();
    y[r] = rng.Uniform();
  }
  const std::vector<double> query(65, 0.5);
  for (auto _ : state) {
    ml::GaussianProcess gp;
    gp.Fit(x, y);
    double total = 0;
    for (int c = 0; c < 200; ++c) total += gp.ExpectedImprovement(query, 0.5);
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_GpFitAndEi)->Arg(60)->Arg(120);

void BM_PcaFit63Metrics(benchmark::State& state) {
  common::Rng rng(5);
  linalg::Matrix data(140, 63);
  for (size_t r = 0; r < 140; ++r) {
    for (size_t c = 0; c < 63; ++c) data.At(r, c) = rng.Gaussian();
  }
  for (auto _ : state) {
    ml::Pca pca;
    pca.Fit(data);
    benchmark::DoNotOptimize(pca.ComponentsForVariance(0.9));
  }
}
BENCHMARK(BM_PcaFit63Metrics);

void BM_RandomForest200Trees(benchmark::State& state) {
  common::Rng rng(6);
  linalg::Matrix x(140, 65);
  std::vector<double> y(140);
  for (size_t r = 0; r < 140; ++r) {
    for (size_t c = 0; c < 65; ++c) x.At(r, c) = rng.Uniform();
    y[r] = rng.Uniform();
  }
  for (auto _ : state) {
    ml::RandomForest forest;
    common::Rng fit_rng(7);
    forest.Fit(x, y, ml::RandomForestOptions{}, &fit_rng);
    benchmark::DoNotOptimize(forest.RankFeatures());
  }
}
BENCHMARK(BM_RandomForest200Trees);

void BM_LockReplay(benchmark::State& state) {
  common::Rng rng(8);
  cdb::LockSimConfig config;
  config.num_txns = 400;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cdb::LockManager::Simulate(config, &rng));
  }
}
BENCHMARK(BM_LockReplay);

}  // namespace
}  // namespace hunter

BENCHMARK_MAIN();
