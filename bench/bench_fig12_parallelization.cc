// Figure 12: throughput and recommendation time as the number of cloned
// CDBs varies over {1, 5, 10, 15, 20} for (a) MySQL/TPC-C, (b)
// MySQL/Sysbench-RO, and (c) PostgreSQL/TPC-C.
// Paper: recommendation time falls by 87.6-90% at 20 clones while the
// optimal throughput stays roughly stable (HUNTER-* terminates once it
// exceeds 98% of HUNTER's best, so parallelization buys time, not peak).

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "common/table_printer.h"

namespace hunter::bench {
namespace {

void RunScenario(const Scenario& scenario, double unit_scale,
                 const char* unit) {
  std::printf("\n### %s\n\n", scenario.name.c_str());

  // Reference: HUNTER with a single clone.
  tuners::HarnessOptions harness;
  harness.budget_hours = 70.0;
  auto reference_controller = MakeController(scenario, 1, 42);
  auto reference = MakeTuner("HUNTER", scenario, 7);
  const auto ref_result =
      tuners::RunTuning(reference.get(), reference_controller.get(), harness);

  common::TablePrinter table({"clones", std::string("T (") + unit + ")",
                              "rec. time (h)", "time reduction"});
  table.AddRow({"1",
                common::FormatDouble(ref_result.best_throughput * unit_scale,
                                     0),
                common::FormatDouble(ref_result.recommendation_hours, 1),
                "-"});
  for (int clones : {5, 10, 15, 20}) {
    auto controller = MakeController(scenario, clones, 42);
    auto tuner = MakeTuner("HUNTER", scenario, 7);
    tuners::HarnessOptions parallel = harness;
    // HUNTER-* terminates when exceeding ~98% of HUNTER's best (0.95 here
    // to absorb best-so-far noise in the single-seed reference run).
    parallel.target_throughput = 0.95 * ref_result.best_throughput;
    parallel.budget_hours = 16.0;  // cap: the run ends at the target anyway
    const auto result =
        tuners::RunTuning(tuner.get(), controller.get(), parallel);
    const double reduction = 100.0 * (1.0 - result.recommendation_hours /
                                                ref_result.recommendation_hours);
    table.AddRow({std::to_string(clones),
                  common::FormatDouble(result.best_throughput * unit_scale, 0),
                  common::FormatDouble(result.recommendation_hours, 1),
                  common::FormatDouble(reduction, 1) + "%"});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace hunter::bench

int main() {
  using namespace hunter;
  std::printf(
      "## Figure 12: throughput and recommendation time vs number of cloned "
      "CDBs\n");
  {
    auto scenario = bench::MySqlTpcc();
    bench::RunScenario(scenario, 60.0, "txn/min");
  }
  {
    auto scenario = bench::MySqlSysbenchRo();
    bench::RunScenario(scenario, 1.0, "txn/s");
  }
  {
    auto scenario = bench::PostgresTpcc();
    bench::RunScenario(scenario, 60.0, "txn/min");
  }
  std::printf(
      "\npaper: ~87.6-90%% recommendation-time reduction at 20 clones with "
      "roughly stable optimal throughput.\n");
  return 0;
}
