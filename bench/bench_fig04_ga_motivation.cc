// Figure 4: why GA earns its place in the hybrid design. Throughput and
// latency of GA alone vs BestConfig / OtterTune / CDBTune over tuning time
// on MySQL/TPC-C. Paper: GA converges fastest early (beats BestConfig by
// ~0.99e4 txn/min at 15 h) but its final performance is below CDBTune's,
// motivating the GA -> DDPG hand-off.

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"

int main() {
  using namespace hunter;
  std::printf("## Figure 4: performance change with increasing tuning time\n");
  std::printf("(GA alone vs search/learning baselines on MySQL/TPC-C)\n\n");

  auto scenario = bench::MySqlTpcc();
  tuners::HarnessOptions harness;
  harness.budget_hours = 40.0;

  std::vector<tuners::TuningResult> results;
  for (const std::string& method :
       {std::string("GA"), std::string("BestConfig"), std::string("OtterTune"),
        std::string("CDBTune")}) {
    auto controller = bench::MakeController(scenario, 1, 42);
    auto tuner = bench::MakeTuner(method, scenario, 7);
    if (method == "GA") {
      static_cast<core::HunterTuner*>(tuner.get())->set_name("GA");
    }
    results.push_back(
        tuners::RunTuning(tuner.get(), controller.get(), harness));
  }

  bench::PrintThroughputCurves(results, {2, 5, 10, 15, 20, 25, 30, 40}, 60.0,
                               "txn/min");
  std::printf("\n");
  bench::PrintLatencyCurves(results, {2, 5, 10, 15, 20, 25, 30, 40});

  const double ga_15h = bench::CurveAt(results[0].curve, 15.0) * 60.0;
  const double bc_15h = bench::CurveAt(results[1].curve, 15.0) * 60.0;
  std::printf(
      "\nGA vs BestConfig at 15 h: %.0f vs %.0f txn/min (paper: GA leads by "
      "~9.9e3 txn/min); GA final vs CDBTune final: %.0f vs %.0f (paper: "
      "CDBTune has the higher upper bound).\n",
      ga_15h, bc_15h, results[0].best_throughput * 60.0,
      results[3].best_throughput * 60.0);
  return 0;
}
